//! Horizontal partitioning of relations.
//!
//! The paper's relations "may be horizontally partitioned and/or replicated
//! across the regional offices". A [`Partitioning`] describes how a
//! relation's extent is split into disjoint partitions, and each partition is
//! described by a [`Restriction`] — the predicate the seller's query-rewrite
//! algorithm (§3.4) conjoins to queries so that offers only promise data the
//! seller actually holds (`office = 'Myconos'` in the running example).

use crate::schema::RelationSchema;
use crate::value::Value;
use std::fmt;

/// A single-attribute restriction describing a horizontal partition.
///
/// Restrictions are deliberately simpler than full query predicates (those
/// live in `qt-query`): partitioning in practice is on one attribute, and
/// keeping this type closed makes disjointness/coverage reasoning exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Restriction {
    /// The whole extent (an unpartitioned relation).
    All,
    /// `attr IN (values)` — list partitioning. A single value displays as
    /// `attr = value`.
    In {
        /// Attribute index in the relation schema.
        attr: usize,
        /// Admitted values, sorted and deduplicated.
        values: Vec<Value>,
    },
    /// `lo <= attr < hi` — range partitioning. `None` bounds are open.
    Range {
        /// Attribute index in the relation schema.
        attr: usize,
        /// Inclusive lower bound.
        lo: Option<Value>,
        /// Exclusive upper bound.
        hi: Option<Value>,
    },
    /// `hash(attr) % modulus == residue` — hash partitioning.
    Hash {
        /// Attribute index in the relation schema.
        attr: usize,
        /// Number of hash buckets.
        modulus: u32,
        /// Bucket selected by this restriction.
        residue: u32,
    },
}

/// Deterministic value hash used by hash partitioning (and by the executor's
/// repartitioning operators, so both sides agree).
pub fn value_bucket(v: &Value, modulus: u32) -> u32 {
    use std::hash::{Hash, Hasher};
    // FxHash-style multiply-xor over the std SipHash would also work, but a
    // fixed-seed SipHash via DefaultHasher is not stable across releases;
    // roll a tiny FNV-1a so partition layouts are reproducible forever.
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    v.hash(&mut h);
    (h.finish() % modulus as u64) as u32
}

impl Restriction {
    /// Does the row (as a full tuple of the relation) satisfy the restriction?
    pub fn matches_row(&self, row: &[Value]) -> bool {
        match self {
            Restriction::All => true,
            Restriction::In { attr, values } => values.contains(&row[*attr]),
            Restriction::Range { attr, lo, hi } => {
                let v = &row[*attr];
                lo.as_ref().is_none_or(|l| v >= l) && hi.as_ref().is_none_or(|h| v < h)
            }
            Restriction::Hash {
                attr,
                modulus,
                residue,
            } => value_bucket(&row[*attr], *modulus) == *residue,
        }
    }

    /// The attribute this restriction constrains, if any.
    pub fn attr(&self) -> Option<usize> {
        match self {
            Restriction::All => None,
            Restriction::In { attr, .. }
            | Restriction::Range { attr, .. }
            | Restriction::Hash { attr, .. } => Some(*attr),
        }
    }

    /// Conservative disjointness test: `true` means the two restrictions can
    /// share no row; `false` means they might overlap.
    pub fn disjoint_with(&self, other: &Restriction) -> bool {
        match (self, other) {
            (Restriction::All, _) | (_, Restriction::All) => false,
            (
                Restriction::In {
                    attr: a,
                    values: va,
                },
                Restriction::In {
                    attr: b,
                    values: vb,
                },
            ) => a == b && va.iter().all(|v| !vb.contains(v)),
            (
                Restriction::Range {
                    attr: a,
                    lo: alo,
                    hi: ahi,
                },
                Restriction::Range {
                    attr: b,
                    lo: blo,
                    hi: bhi,
                },
            ) => {
                a == b
                    && (match (ahi, blo) {
                        (Some(h), Some(l)) => h <= l,
                        _ => false,
                    } || match (bhi, alo) {
                        (Some(h), Some(l)) => h <= l,
                        _ => false,
                    })
            }
            (Restriction::In { attr: a, values }, Restriction::Range { attr: b, lo, hi })
            | (Restriction::Range { attr: b, lo, hi }, Restriction::In { attr: a, values }) => {
                a == b
                    && values.iter().all(|v| {
                        !(lo.as_ref().is_none_or(|l| v >= l) && hi.as_ref().is_none_or(|h| v < h))
                    })
            }
            (
                Restriction::Hash {
                    attr: a,
                    modulus: am,
                    residue: ar,
                },
                Restriction::Hash {
                    attr: b,
                    modulus: bm,
                    residue: br,
                },
            ) => a == b && am == bm && ar != br,
            _ => false,
        }
    }

    /// Render as a SQL-ish predicate using `schema` for attribute names.
    pub fn display_with<'a>(&'a self, schema: &'a RelationSchema) -> RestrictionDisplay<'a> {
        RestrictionDisplay { r: self, schema }
    }
}

/// Display adapter produced by [`Restriction::display_with`].
pub struct RestrictionDisplay<'a> {
    r: &'a Restriction,
    schema: &'a RelationSchema,
}

impl fmt::Display for RestrictionDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.r {
            Restriction::All => write!(f, "TRUE"),
            Restriction::In { attr, values } => {
                let name = &self.schema.attr(*attr).name;
                if values.len() == 1 {
                    write!(f, "{name} = {}", values[0])
                } else {
                    write!(f, "{name} IN (")?;
                    for (i, v) in values.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, ")")
                }
            }
            Restriction::Range { attr, lo, hi } => {
                let name = &self.schema.attr(*attr).name;
                match (lo, hi) {
                    (Some(l), Some(h)) => write!(f, "{l} <= {name} AND {name} < {h}"),
                    (Some(l), None) => write!(f, "{name} >= {l}"),
                    (None, Some(h)) => write!(f, "{name} < {h}"),
                    (None, None) => write!(f, "TRUE"),
                }
            }
            Restriction::Hash {
                attr,
                modulus,
                residue,
            } => {
                let name = &self.schema.attr(*attr).name;
                write!(f, "hash({name}) % {modulus} = {residue}")
            }
        }
    }
}

/// How a relation's extent is split into horizontal partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioning {
    /// A single partition holding the whole extent.
    Single,
    /// List partitioning: partition `i` holds rows whose `attr` value is in
    /// `groups[i]`. Groups must be pairwise disjoint.
    List {
        /// Attribute index partitioned on.
        attr: usize,
        /// Value groups, one per partition.
        groups: Vec<Vec<Value>>,
    },
    /// Range partitioning with `bounds.len() + 1` partitions: partition 0 is
    /// `attr < bounds[0]`, partition `i` is `bounds[i-1] <= attr < bounds[i]`,
    /// the last partition is `attr >= bounds.last()`. Bounds must be strictly
    /// increasing.
    Range {
        /// Attribute index partitioned on.
        attr: usize,
        /// Strictly increasing split points.
        bounds: Vec<Value>,
    },
    /// Hash partitioning into `parts` buckets on `attr`.
    Hash {
        /// Attribute index partitioned on.
        attr: usize,
        /// Number of buckets (>= 1).
        parts: u32,
    },
}

impl Partitioning {
    /// Number of partitions this scheme defines.
    pub fn num_partitions(&self) -> u16 {
        match self {
            Partitioning::Single => 1,
            Partitioning::List { groups, .. } => groups.len() as u16,
            Partitioning::Range { bounds, .. } => (bounds.len() + 1) as u16,
            Partitioning::Hash { parts, .. } => *parts as u16,
        }
    }

    /// The [`Restriction`] describing partition `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= self.num_partitions()`.
    pub fn restriction(&self, idx: u16) -> Restriction {
        assert!(idx < self.num_partitions(), "partition index out of range");
        match self {
            Partitioning::Single => Restriction::All,
            Partitioning::List { attr, groups } => Restriction::In {
                attr: *attr,
                values: groups[idx as usize].clone(),
            },
            Partitioning::Range { attr, bounds } => {
                let i = idx as usize;
                Restriction::Range {
                    attr: *attr,
                    lo: (i > 0).then(|| bounds[i - 1].clone()),
                    hi: (i < bounds.len()).then(|| bounds[i].clone()),
                }
            }
            Partitioning::Hash { attr, parts } => Restriction::Hash {
                attr: *attr,
                modulus: *parts,
                residue: idx as u32,
            },
        }
    }

    /// Which partition a full row belongs to. `None` only for list
    /// partitioning when the value is in no group.
    pub fn partition_of(&self, row: &[Value]) -> Option<u16> {
        match self {
            Partitioning::Single => Some(0),
            Partitioning::List { attr, groups } => groups
                .iter()
                .position(|g| g.contains(&row[*attr]))
                .map(|i| i as u16),
            Partitioning::Range { attr, bounds } => {
                let v = &row[*attr];
                Some(bounds.iter().position(|b| v < b).unwrap_or(bounds.len()) as u16)
            }
            Partitioning::Hash { attr, parts } => Some(value_bucket(&row[*attr], *parts) as u16),
        }
    }

    /// Validate internal invariants (disjoint list groups, increasing range
    /// bounds, nonzero hash buckets).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Partitioning::Single => Ok(()),
            Partitioning::List { groups, .. } => {
                if groups.is_empty() {
                    return Err("list partitioning needs at least one group".into());
                }
                for (i, g) in groups.iter().enumerate() {
                    if g.is_empty() {
                        return Err(format!("list group {i} is empty"));
                    }
                    for h in &groups[i + 1..] {
                        if g.iter().any(|v| h.contains(v)) {
                            return Err("list groups overlap".into());
                        }
                    }
                }
                Ok(())
            }
            Partitioning::Range { bounds, .. } => {
                if bounds.is_empty() {
                    return Err("range partitioning needs at least one bound".into());
                }
                if bounds.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("range bounds must be strictly increasing".into());
                }
                Ok(())
            }
            Partitioning::Hash { parts, .. } => {
                if *parts == 0 {
                    Err("hash partitioning needs at least one bucket".into())
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, RelationSchema};

    fn schema() -> RelationSchema {
        RelationSchema::new(
            "customer",
            vec![("custid", AttrType::Int), ("office", AttrType::Str)],
        )
    }

    #[test]
    fn single_covers_everything() {
        let p = Partitioning::Single;
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.restriction(0), Restriction::All);
        assert_eq!(p.partition_of(&[Value::Int(1), Value::str("x")]), Some(0));
    }

    #[test]
    fn list_partitioning_routes_rows() {
        let p = Partitioning::List {
            attr: 1,
            groups: vec![vec![Value::str("Athens")], vec![Value::str("Myconos")]],
        };
        p.validate().unwrap();
        assert_eq!(p.num_partitions(), 2);
        let athens = [Value::Int(1), Value::str("Athens")];
        let myconos = [Value::Int(2), Value::str("Myconos")];
        let corfu = [Value::Int(3), Value::str("Corfu")];
        assert_eq!(p.partition_of(&athens), Some(0));
        assert_eq!(p.partition_of(&myconos), Some(1));
        assert_eq!(p.partition_of(&corfu), None);
        assert!(p.restriction(0).matches_row(&athens));
        assert!(!p.restriction(0).matches_row(&myconos));
    }

    #[test]
    fn range_partitioning_routes_rows() {
        let p = Partitioning::Range {
            attr: 0,
            bounds: vec![Value::Int(10), Value::Int(20)],
        };
        p.validate().unwrap();
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.partition_of(&[Value::Int(5), Value::str("")]), Some(0));
        assert_eq!(p.partition_of(&[Value::Int(10), Value::str("")]), Some(1));
        assert_eq!(p.partition_of(&[Value::Int(25), Value::str("")]), Some(2));
        // restriction(i) must match exactly the rows routed to i
        for id in [0i64, 9, 10, 15, 20, 100] {
            let row = [Value::Int(id), Value::str("")];
            let part = p.partition_of(&row).unwrap();
            for i in 0..p.num_partitions() {
                assert_eq!(
                    p.restriction(i).matches_row(&row),
                    i == part,
                    "id={id} i={i}"
                );
            }
        }
    }

    #[test]
    fn hash_partitioning_routes_rows() {
        let p = Partitioning::Hash { attr: 0, parts: 4 };
        p.validate().unwrap();
        for id in 0..64i64 {
            let row = [Value::Int(id), Value::str("")];
            let part = p.partition_of(&row).unwrap();
            assert!(part < 4);
            assert!(p.restriction(part).matches_row(&row));
        }
    }

    #[test]
    fn disjointness_in_in() {
        let a = Restriction::In {
            attr: 1,
            values: vec![Value::str("a")],
        };
        let b = Restriction::In {
            attr: 1,
            values: vec![Value::str("b")],
        };
        let c = Restriction::In {
            attr: 1,
            values: vec![Value::str("a"), Value::str("c")],
        };
        assert!(a.disjoint_with(&b));
        assert!(!a.disjoint_with(&c));
        assert!(!a.disjoint_with(&Restriction::All));
    }

    #[test]
    fn disjointness_range_range() {
        let lo = Restriction::Range {
            attr: 0,
            lo: None,
            hi: Some(Value::Int(10)),
        };
        let hi = Restriction::Range {
            attr: 0,
            lo: Some(Value::Int(10)),
            hi: None,
        };
        let mid = Restriction::Range {
            attr: 0,
            lo: Some(Value::Int(5)),
            hi: Some(Value::Int(15)),
        };
        assert!(lo.disjoint_with(&hi));
        assert!(!lo.disjoint_with(&mid));
        assert!(!hi.disjoint_with(&mid));
    }

    #[test]
    fn disjointness_in_range() {
        let r = Restriction::Range {
            attr: 0,
            lo: Some(Value::Int(0)),
            hi: Some(Value::Int(10)),
        };
        let inside = Restriction::In {
            attr: 0,
            values: vec![Value::Int(5)],
        };
        let outside = Restriction::In {
            attr: 0,
            values: vec![Value::Int(10), Value::Int(11)],
        };
        assert!(!r.disjoint_with(&inside));
        assert!(r.disjoint_with(&outside));
        assert!(outside.disjoint_with(&r));
    }

    #[test]
    fn hash_disjointness() {
        let a = Restriction::Hash {
            attr: 0,
            modulus: 4,
            residue: 0,
        };
        let b = Restriction::Hash {
            attr: 0,
            modulus: 4,
            residue: 1,
        };
        let c = Restriction::Hash {
            attr: 0,
            modulus: 8,
            residue: 1,
        };
        assert!(a.disjoint_with(&b));
        assert!(!a.disjoint_with(&c)); // different modulus: conservative "maybe"
    }

    #[test]
    fn display_forms() {
        let s = schema();
        let eq = Restriction::In {
            attr: 1,
            values: vec![Value::str("Myconos")],
        };
        assert_eq!(eq.display_with(&s).to_string(), "office = 'Myconos'");
        let many = Restriction::In {
            attr: 1,
            values: vec![Value::str("a"), Value::str("b")],
        };
        assert_eq!(many.display_with(&s).to_string(), "office IN ('a', 'b')");
        let r = Restriction::Range {
            attr: 0,
            lo: Some(Value::Int(1)),
            hi: Some(Value::Int(5)),
        };
        assert_eq!(r.display_with(&s).to_string(), "1 <= custid AND custid < 5");
        assert_eq!(Restriction::All.display_with(&s).to_string(), "TRUE");
    }

    #[test]
    fn validation_rejects_bad_schemes() {
        assert!(Partitioning::List {
            attr: 0,
            groups: vec![]
        }
        .validate()
        .is_err());
        assert!(Partitioning::List {
            attr: 0,
            groups: vec![vec![Value::Int(1)], vec![Value::Int(1)]]
        }
        .validate()
        .is_err());
        assert!(Partitioning::Range {
            attr: 0,
            bounds: vec![Value::Int(2), Value::Int(1)]
        }
        .validate()
        .is_err());
        assert!(Partitioning::Hash { attr: 0, parts: 0 }.validate().is_err());
    }

    #[test]
    fn bucket_is_deterministic() {
        let v = Value::str("Myconos");
        assert_eq!(value_bucket(&v, 7), value_bucket(&v, 7));
    }
}
