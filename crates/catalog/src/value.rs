//! The value domain shared by schemas, partition restrictions, predicates,
//! and the row executor.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value.
///
/// The QT reproduction restricts itself to three scalar types, which is all
/// the paper's select-project-join workload needs, plus SQL `NULL`, which
/// only arises as the result of an aggregate over zero input rows (stored
/// data is never null). `Value` implements a *total* order (floats compare
/// via [`f64::total_cmp`]) so it can be used in range restrictions and sort
/// keys; cross-type comparisons order by type tag
/// (`Null < Int < Float < Str`), which never arises in well-typed queries
/// but keeps the order total.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Produced only by `MIN`/`MAX`/`SUM` over an empty group.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (totally ordered via `total_cmp`).
    Float(f64),
    /// Interned string. `Arc<str>` keeps row cloning cheap in the executor.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The width in bytes this value contributes to a shipped row. Used by
    /// the network-transfer cost model.
    pub fn byte_width(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64,
        }
    }

    /// Whether this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload; integers coerce losslessly-enough for aggregation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) | Value::Null => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 3u8.hash(state),
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            // Keep a decimal point so float literals reparse as floats.
            Value::Float(x) if x.is_finite() && x.fract() == 0.0 => write!(f, "{x:.1}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN above +inf; what matters is the order is total.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn cross_type_order_is_by_tag() {
        assert!(Value::Int(i64::MAX) < Value::Float(f64::NEG_INFINITY));
        assert!(Value::Float(f64::INFINITY) < Value::str(""));
    }

    #[test]
    fn eq_is_consistent_with_ord() {
        assert_eq!(Value::Int(5), Value::Int(5));
        assert_ne!(Value::Int(5), Value::Float(5.0));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn byte_widths() {
        assert_eq!(Value::Int(0).byte_width(), 8);
        assert_eq!(Value::Float(0.0).byte_width(), 8);
        assert_eq!(Value::str("abcd").byte_width(), 4);
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("s").as_f64(), None);
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Int(7).as_int(), Some(7));
    }

    #[test]
    fn null_orders_below_everything() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Float(f64::NEG_INFINITY));
        assert!(Value::Null < Value::str(""));
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.to_string(), "NULL");
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Null.byte_width(), 1);
    }

    #[test]
    fn hash_distinguishes_int_and_float() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_ne!(h(&Value::Int(1)), h(&Value::Float(1.0)));
    }
}
