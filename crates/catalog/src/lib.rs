//! Schemas, horizontal partitions, statistics, and placement.
//!
//! This crate is the bottom layer of the query-trading (QT) stack. It models
//! what the paper's federation of autonomous DBMS nodes *stores*:
//!
//! * [`schema`] — relation schemas (attributes and their types) and the
//!   [`value::Value`] domain.
//! * [`partition`] — horizontal partitioning of a relation
//!   (range / list / hash on one attribute), as in the paper's
//!   `customer` table partitioned by `office`.
//! * [`stats`] — per-partition statistics (row counts, per-column
//!   min/max/NDV) used by the local optimizers for cardinality estimation.
//! * [`placement`] — which node holds replicas of which partition, plus each
//!   node's *local view* ([`placement::NodeHoldings`]). Autonomy is enforced
//!   by construction: QT buyers and sellers only ever see a
//!   `NodeHoldings`, never the global [`Catalog`]. Only the *baseline*
//!   optimizers (which model classical, full-knowledge distributed
//!   optimization) are handed the global catalog.
//!
//! Nothing in this crate knows about queries, costs, or the network; those
//! live in the crates stacked above.

pub mod builder;
pub mod error;
pub mod ident;
pub mod partition;
pub mod placement;
pub mod schema;
pub mod stats;
pub mod value;

pub use builder::CatalogBuilder;
pub use error::CatalogError;
pub use ident::{NodeId, PartId, RelId};
pub use partition::{Partitioning, Restriction};
pub use placement::{Catalog, NodeHoldings, Placement, RelationMeta, SchemaDict};
pub use schema::{AttrType, Attribute, RelationSchema};
pub use stats::{ColumnStats, PartitionStats};
pub use value::Value;
