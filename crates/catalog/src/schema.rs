//! Relation schemas.

use crate::value::Value;
use std::fmt;

/// Type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string.
    Str,
}

impl AttrType {
    /// Whether `v` inhabits this type.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (AttrType::Int, Value::Int(_))
                | (AttrType::Float, Value::Float(_))
                | (AttrType::Str, Value::Str(_))
        )
    }

    /// Average width in bytes assumed by the cost model when no statistics
    /// are available.
    pub fn default_width(&self) -> u64 {
        match self {
            AttrType::Int | AttrType::Float => 8,
            AttrType::Str => 16,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Int => write!(f, "INT"),
            AttrType::Float => write!(f, "FLOAT"),
            AttrType::Str => write!(f, "VARCHAR"),
        }
    }
}

/// One attribute (column) of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Column name, unique within the relation.
    pub name: String,
    /// Column type.
    pub ty: AttrType,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of a base relation.
///
/// Schemas are federation-wide common knowledge in QT (the trading messages
/// are SQL text over shared relation names); extents and statistics are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, unique within the federation.
    pub name: String,
    /// Ordered attribute list.
    pub attrs: Vec<Attribute>,
}

impl RelationSchema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics if two attributes share a name — schemas are static test/setup
    /// data, so this is a programming error, not a runtime condition.
    pub fn new(name: impl Into<String>, attrs: Vec<(&str, AttrType)>) -> Self {
        let schema = RelationSchema {
            name: name.into(),
            attrs: attrs
                .into_iter()
                .map(|(n, t)| Attribute::new(n, t))
                .collect(),
        };
        for (i, a) in schema.attrs.iter().enumerate() {
            for b in &schema.attrs[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate attribute in {}", schema.name);
            }
        }
        schema
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of the attribute called `name`, if any.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The attribute at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Average row width in bytes assumed when statistics are absent.
    pub fn default_row_width(&self) -> u64 {
        self.attrs.iter().map(|a| a.ty.default_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> RelationSchema {
        RelationSchema::new(
            "customer",
            vec![
                ("custid", AttrType::Int),
                ("custname", AttrType::Str),
                ("office", AttrType::Str),
            ],
        )
    }

    #[test]
    fn attr_lookup() {
        let s = customer();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_index("office"), Some(2));
        assert_eq!(s.attr_index("missing"), None);
        assert_eq!(s.attr(1).name, "custname");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attrs_rejected() {
        RelationSchema::new("r", vec![("a", AttrType::Int), ("a", AttrType::Str)]);
    }

    #[test]
    fn row_width_sums_defaults() {
        assert_eq!(customer().default_row_width(), 8 + 16 + 16);
    }

    #[test]
    fn admits_checks_types() {
        assert!(AttrType::Int.admits(&Value::Int(1)));
        assert!(!AttrType::Int.admits(&Value::Float(1.0)));
        assert!(AttrType::Str.admits(&Value::str("x")));
    }
}
