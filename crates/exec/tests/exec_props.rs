//! Property-based tests of the executor: physical operators agree with each
//! other and with the reference evaluator on random data.

use proptest::prelude::*;
use qt_catalog::{PartId, RelId, Value};
use qt_exec::reference::same_rows;
use qt_exec::{execute, AggSpec, PhysPlan, Row, RowSource, Table};
use qt_query::{AggFunc, Col, CompOp, Operand, Predicate};
use std::collections::BTreeMap;

struct Mem(BTreeMap<PartId, Table>);

impl RowSource for Mem {
    fn rows_of(&self, part: PartId) -> Option<&[Row]> {
        self.0.get(&part).map(|t| t.as_slice())
    }
}

fn table(rel: u32, rows: &[(i64, i64)]) -> (PartId, Table) {
    (
        PartId::new(RelId(rel), 0),
        rows.iter()
            .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
            .collect(),
    )
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..8, -20i64..20), 0..20)
}

fn scan(rel: u32) -> PhysPlan {
    PhysPlan::Scan {
        part: PartId::new(RelId(rel), 0),
        arity: 2,
    }
}

proptest! {
    /// Hash join and nested-loop join compute the same equi-join.
    #[test]
    fn hash_join_equals_nl_join(l in rows_strategy(), r in rows_strategy()) {
        let store = Mem([table(0, &l), table(1, &r)].into_iter().collect());
        let hj = PhysPlan::HashJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            left_keys: vec![Col::new(RelId(0), 0)],
            right_keys: vec![Col::new(RelId(1), 0)],
        };
        let nl = PhysPlan::NlJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            predicates: vec![Predicate::eq_cols(Col::new(RelId(0), 0), Col::new(RelId(1), 0))],
        };
        let a = execute(&hj, &store, &[]).unwrap();
        let b = execute(&nl, &store, &[]).unwrap();
        prop_assert!(same_rows(&a, &b));
        // Join size sanity: bounded by the cross product.
        prop_assert!(a.len() <= l.len() * r.len());
    }

    /// Filter then union equals union then filter.
    #[test]
    fn filter_commutes_with_union(l in rows_strategy(), r in rows_strategy(), cut in -20i64..20) {
        // Two partitions of the same relation so the union inputs share a
        // schema.
        let mut m = BTreeMap::new();
        m.insert(
            PartId::new(RelId(0), 0),
            l.iter().map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)]).collect::<Table>(),
        );
        m.insert(
            PartId::new(RelId(0), 1),
            r.iter().map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)]).collect::<Table>(),
        );
        let store = Mem(m);
        let s0 = PhysPlan::Scan { part: PartId::new(RelId(0), 0), arity: 2 };
        let s1 = PhysPlan::Scan { part: PartId::new(RelId(0), 1), arity: 2 };
        let pred = Predicate::with_const(Col::new(RelId(0), 1), CompOp::Lt, cut);
        let filter_then_union = PhysPlan::Union {
            inputs: vec![
                PhysPlan::Filter { input: Box::new(s0.clone()), predicates: vec![pred.clone()] },
                PhysPlan::Filter { input: Box::new(s1.clone()), predicates: vec![pred.clone()] },
            ],
        };
        let union_then_filter = PhysPlan::Filter {
            input: Box::new(PhysPlan::Union { inputs: vec![s0, s1] }),
            predicates: vec![pred],
        };
        let a = execute(&filter_then_union, &store, &[]).unwrap();
        let b = execute(&union_then_filter, &store, &[]).unwrap();
        prop_assert!(same_rows(&a, &b));
    }

    /// Sort is a permutation and is ordered on the key.
    #[test]
    fn sort_is_an_ordered_permutation(rows in rows_strategy()) {
        let store = Mem([table(0, &rows)].into_iter().collect());
        let sorted = PhysPlan::Sort {
            input: Box::new(scan(0)),
            keys: vec![Col::new(RelId(0), 1)],
        };
        let out = execute(&sorted, &store, &[]).unwrap();
        let plain = execute(&scan(0), &store, &[]).unwrap();
        prop_assert!(same_rows(&out, &plain));
        for w in out.windows(2) {
            prop_assert!(w[0][1] <= w[1][1]);
        }
    }

    /// SUM/COUNT grouped aggregation agrees with a hand fold.
    #[test]
    fn aggregate_matches_hand_fold(rows in rows_strategy()) {
        let store = Mem([table(0, &rows)].into_iter().collect());
        let agg = PhysPlan::HashAggregate {
            input: Box::new(scan(0)),
            group_by: vec![Col::new(RelId(0), 0)],
            aggs: vec![
                AggSpec { func: AggFunc::Sum, arg: Some(Col::new(RelId(0), 1)) },
                AggSpec { func: AggFunc::Count, arg: None },
                AggSpec { func: AggFunc::Min, arg: Some(Col::new(RelId(0), 1)) },
                AggSpec { func: AggFunc::Max, arg: Some(Col::new(RelId(0), 1)) },
            ],
        };
        let out = execute(&agg, &store, &[]).unwrap();
        let mut expect: BTreeMap<i64, (i64, i64, i64, i64)> = BTreeMap::new();
        for (a, b) in &rows {
            let e = expect.entry(*a).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 = e.0.wrapping_add(*b);
            e.1 += 1;
            e.2 = e.2.min(*b);
            e.3 = e.3.max(*b);
        }
        prop_assert_eq!(out.len(), expect.len());
        for row in &out {
            let key = row[0].as_int().unwrap();
            let (sum, count, min, max) = expect[&key];
            // SUM over all-int inputs stays Int.
            prop_assert_eq!(row[1].clone(), Value::Int(sum));
            prop_assert_eq!(row[2].clone(), Value::Int(count));
            prop_assert_eq!(row[3].clone(), Value::Int(min));
            prop_assert_eq!(row[4].clone(), Value::Int(max));
        }
    }

    /// Predicates behave identically in Filter and in NlJoin residuals.
    #[test]
    fn theta_join_equals_filtered_cross(l in rows_strategy(), r in rows_strategy(), op_i in 0usize..6) {
        let ops = [CompOp::Eq, CompOp::Ne, CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge];
        let op = ops[op_i];
        let store = Mem([table(0, &l), table(1, &r)].into_iter().collect());
        let pred = Predicate {
            left: Col::new(RelId(0), 1),
            op,
            right: Operand::Col(Col::new(RelId(1), 1)),
        };
        let theta = PhysPlan::NlJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            predicates: vec![pred.clone()],
        };
        let cross_filter = PhysPlan::Filter {
            input: Box::new(PhysPlan::NlJoin {
                left: Box::new(scan(0)),
                right: Box::new(scan(1)),
                predicates: vec![],
            }),
            predicates: vec![pred],
        };
        let a = execute(&theta, &store, &[]).unwrap();
        let b = execute(&cross_filter, &store, &[]).unwrap();
        prop_assert!(same_rows(&a, &b));
    }
}

proptest! {
    /// Merge join over sorted inputs equals hash join.
    #[test]
    fn merge_join_equals_hash_join(l in rows_strategy(), r in rows_strategy()) {
        let store = Mem([table(0, &l), table(1, &r)].into_iter().collect());
        let sorted = |rel: u32| PhysPlan::Sort {
            input: Box::new(scan(rel)),
            keys: vec![Col::new(RelId(rel), 0)],
        };
        let mj = PhysPlan::MergeJoin {
            left: Box::new(sorted(0)),
            right: Box::new(sorted(1)),
            left_keys: vec![Col::new(RelId(0), 0)],
            right_keys: vec![Col::new(RelId(1), 0)],
        };
        let hj = PhysPlan::HashJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            left_keys: vec![Col::new(RelId(0), 0)],
            right_keys: vec![Col::new(RelId(1), 0)],
        };
        let a = execute(&mj, &store, &[]).unwrap();
        let b = execute(&hj, &store, &[]).unwrap();
        prop_assert!(same_rows(&a, &b));
        // Merge-join output is key-ordered.
        for w in a.windows(2) {
            prop_assert!(w[0][0] <= w[1][0]);
        }
    }
}
