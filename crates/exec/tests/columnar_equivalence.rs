//! Property-based equivalence: the columnar executor is bit-identical to the
//! row executor (the correctness oracle) on random plans over random data —
//! same rows, same order — across batch sizes {1, 7, 1024}, spill budgets
//! {tiny (everything spills), unlimited}, and `QT_THREADS` ∈ {1, 4}.
//!
//! CI additionally runs this whole binary under `QT_THREADS=1` and
//! `QT_THREADS=4`; the env-sweeping test below rotates the variable itself
//! (under a lock, since `qt_par::max_threads` re-reads it per call).

use proptest::prelude::*;
use qt_catalog::{PartId, RelId, Value};
use qt_exec::{
    execute, execute_columnar_with_stats, AggSpec, ColumnarConfig, PhysPlan, Row, RowSource, Table,
};
use qt_query::{AggFunc, Col, CompOp, Operand, Predicate};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Guards `QT_THREADS` mutation: tests in this binary run on parallel
/// threads and `qt_par` reads the variable on every call.
static ENV_LOCK: Mutex<()> = Mutex::new(());

struct Mem(BTreeMap<PartId, Table>);

impl RowSource for Mem {
    fn rows_of(&self, part: PartId) -> Option<&[Row]> {
        self.0.get(&part).map(|t| t.as_slice())
    }
}

/// A cell value drawn from all four `Value` variants, with narrow domains so
/// joins and group-bys collide often.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..6).prop_map(Value::Int),
        (-4i64..4).prop_map(|i| Value::Float(i as f64 * 0.5)),
        (0usize..3).prop_map(|i| Value::str(["a", "b", "ab"][i])),
        Just(Value::Null),
    ]
}

/// Rows of (int key, any value, int payload) — col 0 stays Int so hash joins
/// exercise the specialized Int kernel, col 1 exercises Mixed/Null paths.
fn rows_strategy() -> impl Strategy<Value = Table> {
    prop::collection::vec(
        (
            (0i64..5).prop_map(Value::Int),
            value_strategy(),
            (-9i64..9).prop_map(Value::Int),
        ),
        0..24,
    )
    .prop_map(|rows| rows.into_iter().map(|(a, b, c)| vec![a, b, c]).collect())
}

fn scan(rel: u32) -> PhysPlan {
    PhysPlan::Scan {
        part: PartId::new(RelId(rel), 0),
        arity: 3,
    }
}

fn store(l: Table, r: Table) -> Mem {
    Mem(
        [(PartId::new(RelId(0), 0), l), (PartId::new(RelId(1), 0), r)]
            .into_iter()
            .collect(),
    )
}

/// A small random plan: filter → join → optional aggregate / sort.
fn plan_strategy() -> impl Strategy<Value = PhysPlan> {
    let filtered = (any::<bool>(), -3i64..3).prop_map(|(keep, c)| {
        if keep {
            PhysPlan::Filter {
                input: Box::new(scan(0)),
                predicates: vec![Predicate::with_const(Col::new(RelId(0), 2), CompOp::Ge, c)],
            }
        } else {
            scan(0)
        }
    });
    let joined = (filtered, any::<bool>()).prop_map(|(left, hash)| {
        if hash {
            PhysPlan::HashJoin {
                left: Box::new(left),
                right: Box::new(scan(1)),
                left_keys: vec![Col::new(RelId(0), 0)],
                right_keys: vec![Col::new(RelId(1), 0)],
            }
        } else {
            PhysPlan::NlJoin {
                left: Box::new(left),
                right: Box::new(scan(1)),
                predicates: vec![
                    Predicate::eq_cols(Col::new(RelId(0), 0), Col::new(RelId(1), 0)),
                    Predicate {
                        left: Col::new(RelId(0), 2),
                        op: CompOp::Le,
                        right: Operand::Col(Col::new(RelId(1), 2)),
                    },
                ],
            }
        }
    });
    (joined, 0u8..3).prop_map(|(j, top)| match top {
        0 => j,
        1 => PhysPlan::Sort {
            input: Box::new(j),
            keys: vec![Col::new(RelId(1), 2), Col::new(RelId(0), 1)],
        },
        _ => PhysPlan::HashAggregate {
            input: Box::new(j),
            group_by: vec![Col::new(RelId(1), 0)],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(Col::new(RelId(0), 2)),
                },
                AggSpec {
                    func: AggFunc::Count,
                    arg: None,
                },
                AggSpec {
                    func: AggFunc::Min,
                    arg: Some(Col::new(RelId(0), 0)),
                },
            ],
        },
    })
}

fn configs() -> Vec<ColumnarConfig> {
    let mut out = Vec::new();
    for batch_rows in [1usize, 7, 1024] {
        for mem_budget_bytes in [0usize, usize::MAX] {
            out.push(ColumnarConfig {
                batch_rows,
                mem_budget_bytes,
                spill_partitions: 3,
            });
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Columnar output is bit-identical (rows and order) to the row executor
    /// for every batch size × spill budget combination.
    #[test]
    fn columnar_matches_row_executor(l in rows_strategy(), r in rows_strategy(), plan in plan_strategy()) {
        let src = store(l, r);
        let oracle = execute(&plan, &src, &[]).unwrap();
        for cfg in configs() {
            let (got, stats) = execute_columnar_with_stats(&plan, &src, &[], &cfg).unwrap();
            prop_assert_eq!(&got, &oracle, "batch_rows={} budget={}", cfg.batch_rows, cfg.mem_budget_bytes);
            // A zero budget forces every join build / aggregate input to
            // spill. An operator with zero input bytes has nothing to spill,
            // so only require it when the join produced rows (which implies
            // a nonempty build side).
            if cfg.mem_budget_bytes == 0 && !got.is_empty() {
                prop_assert_eq!(stats.spill_files > 0, true);
            }
        }
    }

    /// Same equivalence while rotating `QT_THREADS` between 1 and 4: the
    /// parallel probe/filter sections must not perturb row order.
    #[test]
    fn columnar_is_thread_count_invariant(l in rows_strategy(), r in rows_strategy(), plan in plan_strategy()) {
        let src = store(l, r);
        let oracle = execute(&plan, &src, &[]).unwrap();
        let _guard = ENV_LOCK.lock().unwrap();
        let prev = std::env::var("QT_THREADS").ok();
        for threads in ["1", "4"] {
            std::env::set_var("QT_THREADS", threads);
            for cfg in [ColumnarConfig { batch_rows: 7, ..Default::default() },
                        ColumnarConfig { batch_rows: 7, mem_budget_bytes: 0, spill_partitions: 2 }] {
                let (got, _) = execute_columnar_with_stats(&plan, &src, &[], &cfg).unwrap();
                prop_assert_eq!(&got, &oracle, "QT_THREADS={} budget={}", threads, cfg.mem_budget_bytes);
            }
        }
        match prev {
            Some(v) => std::env::set_var("QT_THREADS", v),
            None => std::env::remove_var("QT_THREADS"),
        }
    }
}
