//! Instrumented execution: run a plan and record per-operator row counts —
//! the data behind `EXPLAIN ANALYZE`-style output.

use crate::error::ExecError;
use crate::exec::{execute, RowSource};
use crate::plan::PhysPlan;
use crate::Table;

/// One operator's measured work during a columnar execution: row counts,
/// input bytes, and wall-clock seconds. These are the observations the
/// `qt-cost` calibration loop fits its per-tuple/per-byte parameters from.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTiming {
    /// Operator kind (`"Scan"`, `"Filter"`, `"HashJoinBuild"`, …). Joins
    /// emit separate build and probe records.
    pub op: &'static str,
    /// Rows the operator consumed.
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Approximate bytes of columnar input.
    pub bytes_in: u64,
    /// Measured wall-clock seconds for the operator's own work (children
    /// excluded).
    pub secs: f64,
}

/// Row counts observed at one operator during a traced execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Nesting depth in the plan tree (0 = root).
    pub depth: usize,
    /// Operator label (`"HashJoin"`, `"Scan rel0.p1"`, …).
    pub label: String,
    /// Rows the operator produced.
    pub rows_out: usize,
}

/// Execute `plan` and record the output cardinality of every operator.
///
/// The implementation re-executes each subtree, which is quadratic in plan
/// depth — fine for the interactive/debugging use it serves (the plans here
/// are small trees over purchased inputs), and it keeps the fast path in
/// [`execute`] untouched.
pub fn execute_traced(
    plan: &PhysPlan,
    source: &dyn RowSource,
    inputs: &[Table],
) -> Result<(Table, Vec<OpTrace>), ExecError> {
    let mut traces = Vec::new();
    collect(plan, source, inputs, 0, &mut traces)?;
    let result = execute(plan, source, inputs)?;
    Ok((result, traces))
}

fn label(plan: &PhysPlan) -> String {
    match plan {
        PhysPlan::Scan { part, .. } => format!("Scan {part}"),
        PhysPlan::Input { slot, .. } => format!("Input slot={slot}"),
        PhysPlan::Filter { predicates, .. } => format!("Filter ({} preds)", predicates.len()),
        PhysPlan::Project { cols, .. } => format!("Project ({} cols)", cols.len()),
        PhysPlan::HashJoin { left_keys, .. } => format!("HashJoin ({} keys)", left_keys.len()),
        PhysPlan::MergeJoin { left_keys, .. } => {
            format!("MergeJoin ({} keys)", left_keys.len())
        }
        PhysPlan::NlJoin { predicates, .. } => format!("NlJoin ({} preds)", predicates.len()),
        PhysPlan::Union { inputs } => format!("Union ({} inputs)", inputs.len()),
        PhysPlan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
        PhysPlan::HashAggregate { group_by, aggs, .. } => {
            format!(
                "HashAggregate ({} keys, {} aggs)",
                group_by.len(),
                aggs.len()
            )
        }
    }
}

fn collect(
    plan: &PhysPlan,
    source: &dyn RowSource,
    inputs: &[Table],
    depth: usize,
    out: &mut Vec<OpTrace>,
) -> Result<(), ExecError> {
    let rows = execute(plan, source, inputs)?.len();
    out.push(OpTrace {
        depth,
        label: label(plan),
        rows_out: rows,
    });
    match plan {
        PhysPlan::Scan { .. } | PhysPlan::Input { .. } => {}
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::HashAggregate { input, .. } => {
            collect(input, source, inputs, depth + 1, out)?;
        }
        PhysPlan::HashJoin { left, right, .. }
        | PhysPlan::MergeJoin { left, right, .. }
        | PhysPlan::NlJoin { left, right, .. } => {
            collect(left, source, inputs, depth + 1, out)?;
            collect(right, source, inputs, depth + 1, out)?;
        }
        PhysPlan::Union { inputs: plans } => {
            for p in plans {
                collect(p, source, inputs, depth + 1, out)?;
            }
        }
    }
    Ok(())
}

/// Render traces as an indented `EXPLAIN ANALYZE`-style tree.
pub fn render(traces: &[OpTrace]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for t in traces {
        let _ = writeln!(
            s,
            "{}{} → {} rows",
            "  ".repeat(t.depth),
            t.label,
            t.rows_out
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::RowSource;
    use crate::Row;
    use qt_catalog::{PartId, RelId, Value};
    use qt_query::{Col, CompOp, Predicate};
    use std::collections::BTreeMap;

    struct Mem(BTreeMap<PartId, Table>);

    impl RowSource for Mem {
        fn rows_of(&self, part: PartId) -> Option<&[Row]> {
            self.0.get(&part).map(|t| t.as_slice())
        }
    }

    fn store() -> Mem {
        let rows: Table = (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect();
        Mem([(PartId::new(RelId(0), 0), rows)].into_iter().collect())
    }

    #[test]
    fn traces_report_per_operator_rows() {
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::Scan {
                part: PartId::new(RelId(0), 0),
                arity: 2,
            }),
            predicates: vec![Predicate::with_const(
                Col::new(RelId(0), 0),
                CompOp::Lt,
                4i64,
            )],
        };
        let (result, traces) = execute_traced(&plan, &store(), &[]).unwrap();
        assert_eq!(result.len(), 4);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].rows_out, 4);
        assert_eq!(traces[0].depth, 0);
        assert!(traces[0].label.starts_with("Filter"));
        assert_eq!(traces[1].rows_out, 10);
        assert!(traces[1].label.starts_with("Scan"));
    }

    #[test]
    fn render_indents_by_depth() {
        let traces = vec![
            OpTrace {
                depth: 0,
                label: "Project (1 cols)".into(),
                rows_out: 3,
            },
            OpTrace {
                depth: 1,
                label: "Scan rel0.p0".into(),
                rows_out: 10,
            },
        ];
        let s = render(&traces);
        assert!(s.contains("Project (1 cols) → 3 rows"));
        assert!(s.contains("  Scan rel0.p0 → 10 rows"));
    }

    #[test]
    fn traced_result_matches_plain_execution() {
        let plan = PhysPlan::Scan {
            part: PartId::new(RelId(0), 0),
            arity: 2,
        };
        let plain = execute(&plan, &store(), &[]).unwrap();
        let (traced, _) = execute_traced(&plan, &store(), &[]).unwrap();
        assert_eq!(plain, traced);
    }
}
