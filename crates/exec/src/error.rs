//! Execution errors.

use qt_catalog::PartId;
use qt_query::Col;
use std::fmt;

/// Errors raised by the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A scanned partition is absent from the row source.
    MissingPartition(PartId),
    /// A referenced input slot was not supplied.
    MissingInput(usize),
    /// A plan references a column its child does not produce.
    UnresolvedColumn(Col),
    /// An aggregate was applied to a non-numeric column.
    TypeError(String),
    /// A spill file could not be written, read, or decoded.
    Spill(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingPartition(p) => write!(f, "partition {p} not in row source"),
            ExecError::MissingInput(i) => write!(f, "input slot {i} not supplied"),
            ExecError::UnresolvedColumn(c) => {
                write!(f, "column {:?} not produced by child plan", c)
            }
            ExecError::TypeError(m) => write!(f, "type error: {m}"),
            ExecError::Spill(m) => write!(f, "spill error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::RelId;

    #[test]
    fn display() {
        assert!(ExecError::MissingPartition(PartId::new(RelId(0), 1))
            .to_string()
            .contains("rel0.p1"));
        assert!(ExecError::MissingInput(3).to_string().contains("slot 3"));
        assert!(ExecError::TypeError("x".into()).to_string().contains("x"));
    }
}
