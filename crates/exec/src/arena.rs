//! Arena-backed plan nodes for zero-clone DP enumeration.
//!
//! The local optimizer's DP considers hundreds of thousands of join
//! candidates for a 10-relation query, and Pareto pruning throws most of
//! them away. Building each candidate as a boxed [`PhysPlan`] tree means
//! deep-cloning both child sub-trees per candidate — O(plan size) work per
//! consideration. A [`PlanArena`] makes a candidate O(1): nodes live in one
//! flat `Vec`, children are [`PlanId`] indices, and a new join is a single
//! push referencing the two memoized child ids. Dropped candidates leave a
//! dead slot behind; the arena is per-enumeration scratch, freed wholesale.
//!
//! Boxed [`PhysPlan`] trees are materialized only at the optimizer's output
//! boundary ([`PlanArena::materialize`]), for exactly the plans that
//! survive — `materialize(push(n))` round-trips bit-identically to building
//! the tree directly.
//!
//! Only the operators the join enumerator emits have arena forms; the
//! boundary layers (aggregation, final sort/projection, input slots) are
//! built as boxed trees on top of the materialized winner.

use crate::plan::PhysPlan;
use qt_catalog::PartId;
use qt_query::{Col, Predicate};

/// Index of a node in a [`PlanArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(u32);

impl PlanId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One plan node whose children are arena ids instead of boxes.
///
/// Variants mirror the enumeration subset of [`PhysPlan`]; see that type
/// for field semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum ArenaPlan {
    /// See [`PhysPlan::Scan`].
    Scan {
        /// The partition to scan.
        part: PartId,
        /// Arity of the relation.
        arity: usize,
    },
    /// See [`PhysPlan::Filter`].
    Filter {
        /// Input node.
        input: PlanId,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// See [`PhysPlan::HashJoin`].
    HashJoin {
        /// Build side.
        left: PlanId,
        /// Probe side.
        right: PlanId,
        /// Build-side join keys.
        left_keys: Vec<Col>,
        /// Probe-side join keys.
        right_keys: Vec<Col>,
    },
    /// See [`PhysPlan::MergeJoin`].
    MergeJoin {
        /// Left input, sorted on `left_keys`.
        left: PlanId,
        /// Right input, sorted on `right_keys`.
        right: PlanId,
        /// Left-side join keys.
        left_keys: Vec<Col>,
        /// Right-side join keys.
        right_keys: Vec<Col>,
    },
    /// See [`PhysPlan::NlJoin`].
    NlJoin {
        /// Outer side.
        left: PlanId,
        /// Inner side.
        right: PlanId,
        /// Join predicates on the concatenated row.
        predicates: Vec<Predicate>,
    },
    /// See [`PhysPlan::Union`].
    Union {
        /// Input nodes (at least one).
        inputs: Vec<PlanId>,
    },
    /// See [`PhysPlan::Sort`].
    Sort {
        /// Input node.
        input: PlanId,
        /// Sort keys, major first.
        keys: Vec<Col>,
    },
}

/// Flat storage for one enumeration's candidate plans.
#[derive(Debug, Default)]
pub struct PlanArena {
    nodes: Vec<ArenaPlan>,
}

impl PlanArena {
    /// An empty arena.
    pub fn new() -> Self {
        PlanArena::default()
    }

    /// An empty arena with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        PlanArena {
            nodes: Vec::with_capacity(cap),
        }
    }

    /// Append a node, returning its id. Children must already be in the
    /// arena (ids only ever reference earlier pushes).
    pub fn push(&mut self, node: ArenaPlan) -> PlanId {
        let id = PlanId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(node);
        id
    }

    /// The node behind `id`.
    pub fn get(&self, id: PlanId) -> &ArenaPlan {
        &self.nodes[id.index()]
    }

    /// Number of nodes ever pushed (live and pruned alike).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Build the boxed [`PhysPlan`] tree rooted at `id`. Shared sub-plans
    /// are duplicated, exactly as tree-building enumeration would have.
    pub fn materialize(&self, id: PlanId) -> PhysPlan {
        match self.get(id) {
            ArenaPlan::Scan { part, arity } => PhysPlan::Scan {
                part: *part,
                arity: *arity,
            },
            ArenaPlan::Filter { input, predicates } => PhysPlan::Filter {
                input: Box::new(self.materialize(*input)),
                predicates: predicates.clone(),
            },
            ArenaPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => PhysPlan::HashJoin {
                left: Box::new(self.materialize(*left)),
                right: Box::new(self.materialize(*right)),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
            },
            ArenaPlan::MergeJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => PhysPlan::MergeJoin {
                left: Box::new(self.materialize(*left)),
                right: Box::new(self.materialize(*right)),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
            },
            ArenaPlan::NlJoin {
                left,
                right,
                predicates,
            } => PhysPlan::NlJoin {
                left: Box::new(self.materialize(*left)),
                right: Box::new(self.materialize(*right)),
                predicates: predicates.clone(),
            },
            ArenaPlan::Union { inputs } => PhysPlan::Union {
                inputs: inputs.iter().map(|i| self.materialize(*i)).collect(),
            },
            ArenaPlan::Sort { input, keys } => PhysPlan::Sort {
                input: Box::new(self.materialize(*input)),
                keys: keys.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::RelId;

    fn scan(arena: &mut PlanArena, rel: u32, arity: usize) -> PlanId {
        arena.push(ArenaPlan::Scan {
            part: PartId::new(RelId(rel), 0),
            arity,
        })
    }

    #[test]
    fn materialize_round_trips_a_join_tree() {
        let mut a = PlanArena::new();
        let r = scan(&mut a, 0, 2);
        let s = scan(&mut a, 1, 2);
        let sorted = a.push(ArenaPlan::Sort {
            input: s,
            keys: vec![Col::new(RelId(1), 0)],
        });
        let join = a.push(ArenaPlan::MergeJoin {
            left: r,
            right: sorted,
            left_keys: vec![Col::new(RelId(0), 0)],
            right_keys: vec![Col::new(RelId(1), 0)],
        });
        let got = a.materialize(join);
        let want = PhysPlan::MergeJoin {
            left: Box::new(PhysPlan::Scan {
                part: PartId::new(RelId(0), 0),
                arity: 2,
            }),
            right: Box::new(PhysPlan::Sort {
                input: Box::new(PhysPlan::Scan {
                    part: PartId::new(RelId(1), 0),
                    arity: 2,
                }),
                keys: vec![Col::new(RelId(1), 0)],
            }),
            left_keys: vec![Col::new(RelId(0), 0)],
            right_keys: vec![Col::new(RelId(1), 0)],
        };
        assert_eq!(got, want);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn shared_children_are_duplicated_on_materialize() {
        let mut a = PlanArena::new();
        let r = scan(&mut a, 0, 1);
        let join = a.push(ArenaPlan::NlJoin {
            left: r,
            right: r,
            predicates: vec![],
        });
        let t = a.materialize(join);
        let PhysPlan::NlJoin { left, right, .. } = t else {
            panic!("nl join")
        };
        assert_eq!(left, right);
    }

    #[test]
    fn union_and_filter_materialize() {
        let mut a = PlanArena::new();
        let p0 = scan(&mut a, 0, 1);
        let p1 = scan(&mut a, 0, 1);
        let u = a.push(ArenaPlan::Union {
            inputs: vec![p0, p1],
        });
        let f = a.push(ArenaPlan::Filter {
            input: u,
            predicates: vec![],
        });
        let t = a.materialize(f);
        assert_eq!(t.node_count(), 4);
        assert!(!a.is_empty());
    }
}
