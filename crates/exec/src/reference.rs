//! Brute-force reference evaluator of [`Query`] semantics.
//!
//! Every optimizer in the workspace is tested by executing its physical plan
//! and comparing against this evaluator, which computes the answer the
//! obvious way: materialize extents, cross-product, filter, group, project.
//! Deliberately simple — its only virtue is being obviously correct.

use crate::error::ExecError;
use crate::exec::RowSource;
use crate::{Row, Table};
use qt_catalog::{PartId, Value};
use qt_query::{AggFunc, Col, Operand, Query, SelectItem};
use std::collections::HashMap;

/// Evaluate `query` against `source`. The output column order is the query's
/// `SELECT` order; rows are sorted by `ORDER BY` if present, otherwise in an
/// unspecified (but deterministic) order.
pub fn evaluate_query(query: &Query, source: &dyn RowSource) -> Result<Table, ExecError> {
    // 1. Materialize each relation's requested extent.
    let mut schema: Vec<Col> = Vec::new();
    let mut rows: Table = vec![vec![]];
    for (&rel, parts) in &query.relations {
        let mut extent: Table = Vec::new();
        let mut arity = 0;
        for idx in parts.iter() {
            let part = PartId::new(rel, idx);
            let part_rows = source
                .rows_of(part)
                .ok_or(ExecError::MissingPartition(part))?;
            if let Some(r0) = part_rows.first() {
                arity = r0.len();
            }
            extent.extend(part_rows.iter().cloned());
        }
        if arity == 0 {
            // All partitions empty: infer arity from any sibling partition
            // or fall back to the columns the query references.
            arity = query
                .all_cols()
                .into_iter()
                .filter(|c| c.rel == rel)
                .map(|c| c.attr + 1)
                .max()
                .unwrap_or(1);
        }
        // 2. Cross product with the accumulated rows.
        let mut next: Table = Vec::with_capacity(rows.len() * extent.len().max(1));
        for base in &rows {
            for ext in &extent {
                let mut row = base.clone();
                row.extend(ext.iter().cloned());
                next.push(row);
            }
        }
        rows = next;
        schema.extend((0..arity).map(|a| Col::new(rel, a)));
    }

    let pos = |c: Col| -> Result<usize, ExecError> {
        schema
            .iter()
            .position(|s| *s == c)
            .ok_or(ExecError::UnresolvedColumn(c))
    };

    // 3. Filter.
    let mut filtered: Table = Vec::new();
    'rows: for row in rows {
        for p in &query.predicates {
            let l = &row[pos(p.left)?];
            let ok = match &p.right {
                Operand::Const(v) => p.op.eval(l, v),
                Operand::Col(c) => p.op.eval(l, &row[pos(*c)?]),
            };
            if !ok {
                continue 'rows;
            }
        }
        filtered.push(row);
    }

    if !query.is_aggregate() {
        // 4a. Sort (on full rows) then project to the select order.
        if !query.order_by.is_empty() {
            let keys: Vec<usize> = query
                .order_by
                .iter()
                .map(|c| pos(*c))
                .collect::<Result<_, _>>()?;
            filtered.sort_by(|a, b| {
                for &i in &keys {
                    let ord = a[i].cmp(&b[i]);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        let out_pos: Vec<usize> = query
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Col(c) => pos(*c),
                SelectItem::Agg { .. } => unreachable!("non-aggregate query"),
            })
            .collect::<Result<_, _>>()?;
        return Ok(filtered
            .into_iter()
            .map(|row| out_pos.iter().map(|&i| row[i].clone()).collect())
            .collect());
    }

    // 4b. Group and aggregate.
    let key_pos: Vec<usize> = query
        .group_by
        .iter()
        .map(|c| pos(*c))
        .collect::<Result<_, _>>()?;
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Table> = HashMap::new();
    for row in filtered {
        let key: Vec<Value> = key_pos.iter().map(|&i| row[i].clone()).collect();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row);
    }
    if query.group_by.is_empty() && groups.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let mut out: Table = Vec::new();
    for key in order {
        let members = &groups[&key];
        let mut row: Row = Vec::with_capacity(query.select.len());
        for item in &query.select {
            match item {
                SelectItem::Col(c) => {
                    let i = query
                        .group_by
                        .iter()
                        .position(|g| g == c)
                        .expect("validated: plain select col is a group key");
                    row.push(key[i].clone());
                }
                SelectItem::Agg { func, arg } => {
                    row.push(eval_agg(*func, *arg, members, &schema)?);
                }
            }
        }
        out.push(row);
    }
    Ok(out)
}

fn eval_agg(
    func: AggFunc,
    arg: Option<Col>,
    rows: &Table,
    schema: &[Col],
) -> Result<Value, ExecError> {
    let pos = |c: Col| -> Result<usize, ExecError> {
        schema
            .iter()
            .position(|s| *s == c)
            .ok_or(ExecError::UnresolvedColumn(c))
    };
    let nums = |c: Col| -> Result<Vec<f64>, ExecError> {
        let i = pos(c)?;
        rows.iter()
            .map(|r| {
                r[i].as_f64().ok_or_else(|| {
                    ExecError::TypeError(format!("non-numeric aggregate input {}", r[i]))
                })
            })
            .collect()
    };
    Ok(match func {
        AggFunc::Count => Value::Int(rows.len() as i64),
        // SUM stays Int over all-int inputs (wrapping), switches to a float
        // accumulator seeded from the integer partial sum on the first float
        // input, and is NULL over zero rows. `+ 0.0` normalizes a possible
        // `-0.0` accumulator, which our total order distinguishes.
        AggFunc::Sum => {
            let i = pos(arg.expect("SUM arg"))?;
            let (mut int_acc, mut float_acc, mut is_float, mut seen) = (0i64, 0.0f64, false, false);
            for r in rows {
                match &r[i] {
                    Value::Int(v) => {
                        seen = true;
                        if is_float {
                            float_acc += *v as f64;
                        } else {
                            int_acc = int_acc.wrapping_add(*v);
                        }
                    }
                    Value::Float(x) => {
                        seen = true;
                        if !is_float {
                            is_float = true;
                            float_acc = int_acc as f64;
                        }
                        float_acc += *x;
                    }
                    other => {
                        return Err(ExecError::TypeError(format!(
                            "non-numeric aggregate input {other}"
                        )))
                    }
                }
            }
            if !seen {
                Value::Null
            } else if is_float {
                Value::Float(float_acc + 0.0)
            } else {
                Value::Int(int_acc)
            }
        }
        AggFunc::Avg => {
            let v = nums(arg.expect("AVG arg"))?;
            Value::Float(if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            })
        }
        // SQL: MIN/MAX over zero rows is NULL.
        AggFunc::Min => {
            let i = pos(arg.expect("MIN arg"))?;
            rows.iter()
                .map(|r| r[i].clone())
                .min()
                .unwrap_or(Value::Null)
        }
        AggFunc::Max => {
            let i = pos(arg.expect("MAX arg"))?;
            rows.iter()
                .map(|r| r[i].clone())
                .max()
                .unwrap_or(Value::Null)
        }
    })
}

/// Compare two tables as multisets (order-insensitive equality).
pub fn same_rows(a: &Table, b: &Table) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a = a.clone();
    let mut b = b.clone();
    a.sort();
    b.sort();
    a == b
}

/// Like [`same_rows`], but floats compare with relative tolerance `rel` —
/// distributed plans sum partial aggregates in a different order than the
/// reference evaluator, so exact bit equality is too strict for `SUM`/`AVG`
/// results.
pub fn approx_same_rows(a: &Table, b: &Table, rel: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a = a.clone();
    let mut b = b.clone();
    a.sort();
    b.sort();
    a.iter().zip(&b).all(|(ra, rb)| {
        ra.len() == rb.len()
            && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= rel * scale
                }
                _ => va == vb,
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datastore::DataStore;
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, NodeId, PartitionStats, Partitioning, RelationSchema,
    };
    use qt_query::{parse_query, PartSet};

    fn setup() -> (Catalog, DataStore) {
        let mut b = CatalogBuilder::new();
        let c = b.add_relation(
            RelationSchema::new(
                "customer",
                vec![("custid", AttrType::Int), ("office", AttrType::Str)],
            ),
            Partitioning::List {
                attr: 1,
                groups: vec![vec![Value::str("Corfu")], vec![Value::str("Myconos")]],
            },
        );
        let inv = b.add_relation(
            RelationSchema::new(
                "invoiceline",
                vec![("custid", AttrType::Int), ("charge", AttrType::Float)],
            ),
            Partitioning::Single,
        );
        for i in 0..2 {
            b.set_stats(PartId::new(c, i), PartitionStats::synthetic(2, &[2, 1]));
            b.place(PartId::new(c, i), NodeId(0));
        }
        b.set_stats(PartId::new(inv, 0), PartitionStats::synthetic(4, &[3, 4]));
        b.place(PartId::new(inv, 0), NodeId(0));
        let catalog = b.build();

        let mut store = DataStore::new();
        store.load_relation(
            &catalog.dict,
            c,
            vec![
                vec![Value::Int(1), Value::str("Corfu")],
                vec![Value::Int(2), Value::str("Myconos")],
                vec![Value::Int(3), Value::str("Myconos")],
            ],
        );
        store.load_relation(
            &catalog.dict,
            inv,
            vec![
                vec![Value::Int(1), Value::Float(10.0)],
                vec![Value::Int(2), Value::Float(20.0)],
                vec![Value::Int(2), Value::Float(5.0)],
                vec![Value::Int(3), Value::Float(2.5)],
            ],
        );
        (catalog, store)
    }

    #[test]
    fn spj_join_filter() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT office, charge FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid AND charge > 4.0",
        )
        .unwrap();
        let t = evaluate_query(&q, &store).unwrap();
        assert_eq!(t.len(), 3); // charges 10, 20, 5
    }

    #[test]
    fn grouped_aggregate_matches_hand_computation() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
        )
        .unwrap();
        let mut t = evaluate_query(&q, &store).unwrap();
        t.sort();
        assert_eq!(
            t,
            vec![
                vec![Value::str("Corfu"), Value::Float(10.0)],
                vec![Value::str("Myconos"), Value::Float(27.5)],
            ]
        );
    }

    #[test]
    fn partition_restricted_extent() {
        let (cat, store) = setup();
        let q = parse_query(&cat.dict, "SELECT custid FROM customer").unwrap();
        let restricted = q.with_partset(qt_catalog::RelId(0), PartSet::single(1));
        let t = evaluate_query(&restricted, &store).unwrap();
        assert_eq!(t.len(), 2); // only Myconos customers
    }

    #[test]
    fn order_by_sorts_output() {
        let (cat, store) = setup();
        let q = parse_query(&cat.dict, "SELECT charge FROM invoiceline ORDER BY charge").unwrap();
        let t = evaluate_query(&q, &store).unwrap();
        let vals: Vec<f64> = t.iter().map(|r| r[0].as_f64().unwrap()).collect();
        assert_eq!(vals, vec![2.5, 5.0, 10.0, 20.0]);
    }

    #[test]
    fn count_star_scalar() {
        let (cat, store) = setup();
        let q = parse_query(&cat.dict, "SELECT COUNT(*) FROM customer").unwrap();
        assert_eq!(
            evaluate_query(&q, &store).unwrap(),
            vec![vec![Value::Int(3)]]
        );
    }

    #[test]
    fn scalar_aggregate_over_empty_selection() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT SUM(charge) FROM invoiceline WHERE charge > 1000.0",
        )
        .unwrap();
        assert_eq!(evaluate_query(&q, &store).unwrap(), vec![vec![Value::Null]]);
    }

    #[test]
    fn empty_min_max_are_null_and_int_sums_stay_int() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT MIN(charge), MAX(charge) FROM invoiceline WHERE charge > 1000.0",
        )
        .unwrap();
        assert_eq!(
            evaluate_query(&q, &store).unwrap(),
            vec![vec![Value::Null, Value::Null]]
        );
        let q = parse_query(&cat.dict, "SELECT SUM(custid) FROM customer").unwrap();
        assert_eq!(
            evaluate_query(&q, &store).unwrap(),
            vec![vec![Value::Int(6)]]
        );
    }

    #[test]
    fn min_max_avg_semantics() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT MIN(charge), MAX(charge), AVG(charge) FROM invoiceline",
        )
        .unwrap();
        let t = evaluate_query(&q, &store).unwrap();
        assert_eq!(t[0][0], Value::Float(2.5));
        assert_eq!(t[0][1], Value::Float(20.0));
        assert_eq!(t[0][2], Value::Float(37.5 / 4.0));
    }

    #[test]
    fn approx_same_rows_tolerates_float_noise() {
        let a = vec![vec![Value::str("x"), Value::Float(100.000000001)]];
        let b = vec![vec![Value::str("x"), Value::Float(100.0)]];
        assert!(!same_rows(&a, &b));
        assert!(approx_same_rows(&a, &b, 1e-9));
        assert!(!approx_same_rows(&a, &b, 1e-13));
        let c = vec![vec![Value::str("y"), Value::Float(100.0)]];
        assert!(!approx_same_rows(&a, &c, 1e-6));
    }

    #[test]
    fn same_rows_is_order_insensitive() {
        let a = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let b = vec![vec![Value::Int(2)], vec![Value::Int(1)]];
        let c = vec![vec![Value::Int(2)]];
        assert!(same_rows(&a, &b));
        assert!(!same_rows(&a, &c));
    }
}
