//! Physical plans and a row executor.
//!
//! QT never *executes* anything during optimization ("no query or part of it
//! is physically executed during the whole optimization procedure", §3.1) —
//! but a reproduction needs to demonstrate that the plans the optimizer
//! produces actually compute the right answers. This crate provides:
//!
//! * [`plan`] — the physical operator tree ([`PhysPlan`]): scans, filters,
//!   projections, hash/nested-loop joins, unions, sorts, hash aggregation,
//!   and [`PhysPlan::Input`] slots for pre-materialized (purchased) tables;
//! * [`exec`] — a straightforward materializing executor;
//! * [`datastore`] — in-memory partition storage implementing [`RowSource`];
//! * [`mod@reference`] — a brute-force evaluator of [`qt_query::Query`] semantics
//!   used to cross-check every plan the optimizers emit.

pub mod arena;
pub mod columnar;
pub mod datastore;
pub mod error;
pub mod exec;
pub mod plan;
pub mod reference;
mod spill;
pub mod trace;

pub use arena::{ArenaPlan, PlanArena, PlanId};
pub use columnar::{
    execute_columnar, execute_columnar_with_stats, lower, ColBatch, ColExecStats, ColOp, Column,
    ColumnarConfig, DEFAULT_BATCH_ROWS,
};
pub use datastore::DataStore;
pub use error::ExecError;
pub use exec::{execute, RowSource};
pub use plan::{AggSpec, PhysPlan};
pub use reference::evaluate_query;
pub use trace::{execute_traced, OpTiming, OpTrace};

/// A row of values.
pub type Row = Vec<qt_catalog::Value>;
/// A materialized table.
pub type Table = Vec<Row>;
