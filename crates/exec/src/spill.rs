//! Spill files for larger-than-memory operators.
//!
//! Hash joins and hash aggregates whose state exceeds the configured memory
//! budget partition their inputs to disk and process one partition at a
//! time (grace hashing). Records are framed with the same hand-rolled
//! little-endian codec idiom as `qt_trade::wire` — `qt-exec` sits *below*
//! `qt-trade` in the crate graph, so the few put/get helpers are local
//! rather than imported. No serde anywhere.
//!
//! Every spilled row carries a `u64` sequence number so operators can
//! restore the exact row order the row executor would have produced, keeping
//! spilled and in-memory executions bit-identical.

use crate::error::ExecError;
use crate::Row;
use qt_catalog::Value;
use std::fs::File;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files across concurrent executors in one process.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode one row: `[seq u64][n u32][value]*` where a value is a tag byte
/// (0=Int, 1=Float, 2=Str, 3=Null) followed by its payload. Floats go
/// through `to_bits` so the round trip is bit-exact.
pub(crate) fn encode_record(out: &mut Vec<u8>, seq: u64, row: &Row) {
    put_u64(out, seq);
    put_u32(out, row.len() as u32);
    for v in row {
        match v {
            Value::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(2);
                put_u32(out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Null => out.push(3),
        }
    }
}

/// Bounds-checked cursor over a spill file's bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ExecError> {
        if self.at + n > self.buf.len() {
            return Err(ExecError::Spill("truncated spill record".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ExecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ExecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ExecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn value(&mut self) -> Result<Value, ExecError> {
        match self.u8()? {
            0 => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            1 => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            )))),
            2 => {
                let n = self.u32()? as usize;
                let bytes = self.take(n)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| ExecError::Spill("non-utf8 spill string".into()))?;
                Ok(Value::str(s))
            }
            3 => Ok(Value::Null),
            t => Err(ExecError::Spill(format!("bad spill value tag {t}"))),
        }
    }
}

/// Decode a whole spill file back into `(seq, row)` records, in file order.
pub(crate) fn decode_records(buf: &[u8]) -> Result<Vec<(u64, Row)>, ExecError> {
    let mut c = Cursor { buf, at: 0 };
    let mut out = Vec::new();
    while c.at < buf.len() {
        let seq = c.u64()?;
        let n = c.u32()? as usize;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(c.value()?);
        }
        out.push((seq, row));
    }
    Ok(out)
}

fn io_err(e: std::io::Error) -> ExecError {
    ExecError::Spill(e.to_string())
}

/// One spill partition being written. Buffers a chunk of encoded records in
/// memory and flushes to a temp file; `finish` seals it into a readable
/// [`SpillFile`]. The temp file is deleted when the `SpillFile` drops.
pub(crate) struct SpillWriter {
    path: PathBuf,
    file: File,
    buf: Vec<u8>,
    rows: u64,
    bytes: u64,
}

const FLUSH_BYTES: usize = 1 << 16;

impl SpillWriter {
    pub(crate) fn create() -> Result<SpillWriter, ExecError> {
        let id = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("qt-spill-{}-{id}.bin", std::process::id()));
        let file = File::create(&path).map_err(io_err)?;
        Ok(SpillWriter {
            path,
            file,
            buf: Vec::with_capacity(FLUSH_BYTES),
            rows: 0,
            bytes: 0,
        })
    }

    pub(crate) fn push(&mut self, seq: u64, row: &Row) -> Result<(), ExecError> {
        let before = self.buf.len();
        encode_record(&mut self.buf, seq, row);
        self.rows += 1;
        self.bytes += (self.buf.len() - before) as u64;
        if self.buf.len() >= FLUSH_BYTES {
            self.file.write_all(&self.buf).map_err(io_err)?;
            self.buf.clear();
        }
        Ok(())
    }

    pub(crate) fn finish(mut self) -> Result<SpillFile, ExecError> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf).map_err(io_err)?;
        }
        self.file.flush().map_err(io_err)?;
        Ok(SpillFile {
            path: self.path,
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A sealed spill partition on disk. Deleted on drop.
pub(crate) struct SpillFile {
    path: PathBuf,
    pub(crate) rows: u64,
    pub(crate) bytes: u64,
}

impl SpillFile {
    /// Read the whole partition back, in write order.
    pub(crate) fn read_all(&self) -> Result<Vec<(u64, Row)>, ExecError> {
        let mut buf = Vec::with_capacity(self.bytes as usize);
        File::open(&self.path)
            .map_err(io_err)?
            .read_to_end(&mut buf)
            .map_err(io_err)?;
        decode_records(&buf)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_rows_and_seqs() {
        let rows: Vec<(u64, Row)> = vec![
            (7, vec![Value::Int(-3), Value::Float(-0.0), Value::Null]),
            (1, vec![Value::str("spill me"), Value::Int(i64::MIN)]),
            (2, vec![]),
        ];
        let mut w = SpillWriter::create().unwrap();
        for (seq, row) in &rows {
            w.push(*seq, row).unwrap();
        }
        let f = w.finish().unwrap();
        assert_eq!(f.rows, 3);
        let back = f.read_all().unwrap();
        assert_eq!(back.len(), 3);
        for ((s0, r0), (s1, r1)) in rows.iter().zip(&back) {
            assert_eq!(s0, s1);
            assert_eq!(r0.len(), r1.len());
            // Bit-exact float round trip, not just Eq under total order.
            for (a, b) in r0.iter().zip(r1) {
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits())
                    }
                    _ => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn file_removed_on_drop() {
        let mut w = SpillWriter::create().unwrap();
        w.push(0, &vec![Value::Int(1)]).unwrap();
        let f = w.finish().unwrap();
        let path = f.path.clone();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists());
    }

    #[test]
    fn truncated_file_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 5, &vec![Value::str("abc"), Value::Int(1)]);
        for cut in 0..buf.len() {
            // Every prefix either decodes cleanly (empty) or errors.
            if cut == 0 {
                assert!(decode_records(&buf[..cut]).unwrap().is_empty());
            } else {
                assert!(decode_records(&buf[..cut]).is_err());
            }
        }
        assert_eq!(decode_records(&buf).unwrap().len(), 1);
    }
}
