//! The materializing executor.

use crate::error::ExecError;
use crate::plan::{AggSpec, PhysPlan};
use crate::{Row, Table};
use qt_catalog::{PartId, Value};
use qt_query::{AggFunc, Col, Operand, Predicate};
use std::collections::HashMap;

/// Where scans read their rows from. Implemented by [`crate::DataStore`]
/// (one node's partitions) and by anything test code cooks up.
pub trait RowSource {
    /// The rows of `part`, or `None` when this source does not hold it.
    fn rows_of(&self, part: PartId) -> Option<&[Row]>;
}

/// Resolve `col` to its position in `schema`.
fn position(schema: &[Col], col: Col) -> Result<usize, ExecError> {
    schema
        .iter()
        .position(|c| *c == col)
        .ok_or(ExecError::UnresolvedColumn(col))
}

/// Evaluate a conjunctive predicate list on `row` under `schema`.
fn eval_predicates(preds: &[Predicate], schema: &[Col], row: &Row) -> Result<bool, ExecError> {
    for p in preds {
        let l = &row[position(schema, p.left)?];
        let ok = match &p.right {
            Operand::Const(v) => p.op.eval(l, v),
            Operand::Col(c) => p.op.eval(l, &row[position(schema, *c)?]),
        };
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

/// SUM accumulator that keeps integer sums integral: it folds into an `i64`
/// (wrapping) until the first float input, at which point it switches to an
/// `f64` accumulator seeded from the integer partial sum. Fold order is the
/// input order, so results are bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SumAcc {
    int_acc: i64,
    float_acc: f64,
    is_float: bool,
    seen: bool,
}

impl SumAcc {
    pub(crate) fn new() -> SumAcc {
        SumAcc {
            int_acc: 0,
            float_acc: 0.0,
            is_float: false,
            seen: false,
        }
    }

    pub(crate) fn add_int(&mut self, i: i64) {
        self.seen = true;
        if self.is_float {
            self.float_acc += i as f64;
        } else {
            self.int_acc = self.int_acc.wrapping_add(i);
        }
    }

    pub(crate) fn add_float(&mut self, x: f64) {
        self.seen = true;
        if !self.is_float {
            self.is_float = true;
            self.float_acc = self.int_acc as f64;
        }
        self.float_acc += x;
    }

    pub(crate) fn add(&mut self, v: &Value) -> Result<(), ExecError> {
        match v {
            Value::Int(i) => self.add_int(*i),
            Value::Float(x) => self.add_float(*x),
            other => {
                return Err(ExecError::TypeError(format!(
                    "non-numeric aggregate input {other}"
                )))
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        if !self.seen {
            // SQL: SUM over zero rows is NULL.
            Value::Null
        } else if self.is_float {
            // `+ 0.0` maps a possible `-0.0` accumulator to `+0.0` so the
            // result is canonical under the total value order.
            Value::Float(self.float_acc + 0.0)
        } else {
            Value::Int(self.int_acc)
        }
    }
}

pub(crate) enum AggState {
    Count(i64),
    Sum(SumAcc),
    Avg(f64, i64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(SumAcc::new()),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    pub(crate) fn fold(&mut self, v: Option<&Value>) -> Result<(), ExecError> {
        let num = |v: &Value| {
            v.as_f64()
                .ok_or_else(|| ExecError::TypeError(format!("non-numeric aggregate input {v}")))
        };
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(acc) => acc.add(v.expect("SUM needs an argument"))?,
            AggState::Avg(acc, n) => {
                let v = v.expect("AVG needs an argument");
                *acc += num(v)?;
                *n += 1;
            }
            AggState::Min(cur) => {
                let v = v.expect("MIN needs an argument");
                if cur.as_ref().is_none_or(|c| v < c) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let v = v.expect("MAX needs an argument");
                if cur.as_ref().is_none_or(|c| v > c) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum(acc) => acc.finish(),
            AggState::Avg(acc, n) => Value::Float(if n == 0 { 0.0 } else { acc / n as f64 }),
            // SQL: MIN/MAX over zero rows is NULL, not 0.
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Execute `plan` against `source`, with `inputs` supplying pre-materialized
/// tables for [`PhysPlan::Input`] slots. Returns the materialized result.
pub fn execute(
    plan: &PhysPlan,
    source: &dyn RowSource,
    inputs: &[Table],
) -> Result<Table, ExecError> {
    match plan {
        PhysPlan::Scan { part, .. } => source
            .rows_of(*part)
            .map(|r| r.to_vec())
            .ok_or(ExecError::MissingPartition(*part)),
        PhysPlan::Input { slot, .. } => inputs
            .get(*slot)
            .cloned()
            .ok_or(ExecError::MissingInput(*slot)),
        PhysPlan::Filter { input, predicates } => {
            let schema = input.schema();
            let rows = execute(input, source, inputs)?;
            let mut out = Vec::new();
            for row in rows {
                if eval_predicates(predicates, &schema, &row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysPlan::Project { input, cols } => {
            let schema = input.schema();
            let positions: Vec<usize> = cols
                .iter()
                .map(|c| position(&schema, *c))
                .collect::<Result<_, _>>()?;
            let rows = execute(input, source, inputs)?;
            Ok(rows
                .into_iter()
                .map(|row| positions.iter().map(|&i| row[i].clone()).collect())
                .collect())
        }
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let lschema = left.schema();
            let rschema = right.schema();
            let lpos: Vec<usize> = left_keys
                .iter()
                .map(|c| position(&lschema, *c))
                .collect::<Result<_, _>>()?;
            let rpos: Vec<usize> = right_keys
                .iter()
                .map(|c| position(&rschema, *c))
                .collect::<Result<_, _>>()?;
            let lrows = execute(left, source, inputs)?;
            let rrows = execute(right, source, inputs)?;
            let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            for row in &lrows {
                let key: Vec<Value> = lpos.iter().map(|&i| row[i].clone()).collect();
                table.entry(key).or_default().push(row);
            }
            let mut out = Vec::new();
            for rrow in &rrows {
                let key: Vec<Value> = rpos.iter().map(|&i| rrow[i].clone()).collect();
                if let Some(matches) = table.get(&key) {
                    for lrow in matches {
                        let mut combined: Row = (*lrow).clone();
                        combined.extend(rrow.iter().cloned());
                        out.push(combined);
                    }
                }
            }
            Ok(out)
        }
        PhysPlan::MergeJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let lschema = left.schema();
            let rschema = right.schema();
            let lpos: Vec<usize> = left_keys
                .iter()
                .map(|c| position(&lschema, *c))
                .collect::<Result<_, _>>()?;
            let rpos: Vec<usize> = right_keys
                .iter()
                .map(|c| position(&rschema, *c))
                .collect::<Result<_, _>>()?;
            let lrows = execute(left, source, inputs)?;
            let rrows = execute(right, source, inputs)?;
            let key_of = |row: &Row, pos: &[usize]| -> Vec<Value> {
                pos.iter().map(|&i| row[i].clone()).collect()
            };
            let mut out = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < lrows.len() && j < rrows.len() {
                let lk = key_of(&lrows[i], &lpos);
                let rk = key_of(&rrows[j], &rpos);
                match lk.cmp(&rk) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        // Emit the cross product of the two equal-key blocks.
                        let i_end = (i..lrows.len())
                            .find(|&x| key_of(&lrows[x], &lpos) != lk)
                            .unwrap_or(lrows.len());
                        let j_end = (j..rrows.len())
                            .find(|&x| key_of(&rrows[x], &rpos) != rk)
                            .unwrap_or(rrows.len());
                        for lrow in &lrows[i..i_end] {
                            for rrow in &rrows[j..j_end] {
                                let mut combined = lrow.clone();
                                combined.extend(rrow.iter().cloned());
                                out.push(combined);
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
            Ok(out)
        }
        PhysPlan::NlJoin {
            left,
            right,
            predicates,
        } => {
            let schema = plan.schema();
            let lrows = execute(left, source, inputs)?;
            let rrows = execute(right, source, inputs)?;
            let mut out = Vec::new();
            for lrow in &lrows {
                for rrow in &rrows {
                    let mut combined: Row = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    if eval_predicates(predicates, &schema, &combined)? {
                        out.push(combined);
                    }
                }
            }
            Ok(out)
        }
        PhysPlan::Union { inputs: plans } => {
            let mut out = Vec::new();
            for p in plans {
                out.extend(execute(p, source, inputs)?);
            }
            Ok(out)
        }
        PhysPlan::Sort { input, keys } => {
            let schema = input.schema();
            let positions: Vec<usize> = keys
                .iter()
                .map(|c| position(&schema, *c))
                .collect::<Result<_, _>>()?;
            let mut rows = execute(input, source, inputs)?;
            rows.sort_by(|a, b| {
                for &i in &positions {
                    let ord = a[i].cmp(&b[i]);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rows)
        }
        PhysPlan::HashAggregate {
            input,
            group_by,
            aggs,
        } => {
            let schema = input.schema();
            let key_pos: Vec<usize> = group_by
                .iter()
                .map(|c| position(&schema, *c))
                .collect::<Result<_, _>>()?;
            let arg_pos: Vec<Option<usize>> = aggs
                .iter()
                .map(|a| a.arg.map(|c| position(&schema, c)).transpose())
                .collect::<Result<_, _>>()?;
            let rows = execute(input, source, inputs)?;
            // Group in first-seen order for deterministic output.
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            for row in &rows {
                let key: Vec<Value> = key_pos.iter().map(|&i| row[i].clone()).collect();
                let states = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key.clone());
                    aggs.iter().map(|a| AggState::new(a.func)).collect()
                });
                for (state, pos) in states.iter_mut().zip(&arg_pos) {
                    state.fold(pos.map(|i| &row[i]))?;
                }
            }
            // Scalar aggregate over zero rows still yields one row.
            if group_by.is_empty() && groups.is_empty() {
                groups.insert(
                    Vec::new(),
                    aggs.iter().map(|a| AggState::new(a.func)).collect(),
                );
                order.push(Vec::new());
            }
            let mut out = Vec::new();
            for key in order {
                let states = groups.remove(&key).expect("group present");
                let mut row: Row = key;
                for s in states {
                    row.push(s.finish());
                }
                out.push(row);
            }
            Ok(out)
        }
    }
}

/// Convenience: aggregate spec from a query's select items.
pub fn agg_specs(query: &qt_query::Query) -> Vec<AggSpec> {
    query
        .select
        .iter()
        .filter_map(|s| match s {
            qt_query::SelectItem::Agg { func, arg } => Some(AggSpec {
                func: *func,
                arg: *arg,
            }),
            qt_query::SelectItem::Col(_) => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::RelId;
    use qt_query::CompOp;
    use std::collections::BTreeMap;

    struct Mem(BTreeMap<PartId, Table>);

    impl RowSource for Mem {
        fn rows_of(&self, part: PartId) -> Option<&[Row]> {
            self.0.get(&part).map(|t| t.as_slice())
        }
    }

    fn r() -> RelId {
        RelId(0)
    }
    fn s() -> RelId {
        RelId(1)
    }

    fn store() -> Mem {
        // r(a, b): 4 rows; s(a, c): 3 rows.
        let mut m = BTreeMap::new();
        m.insert(
            PartId::new(r(), 0),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
                vec![Value::Int(3), Value::Int(30)],
                vec![Value::Int(2), Value::Int(25)],
            ],
        );
        m.insert(
            PartId::new(s(), 0),
            vec![
                vec![Value::Int(2), Value::str("x")],
                vec![Value::Int(3), Value::str("y")],
                vec![Value::Int(9), Value::str("z")],
            ],
        );
        Mem(m)
    }

    fn scan_r() -> PhysPlan {
        PhysPlan::Scan {
            part: PartId::new(r(), 0),
            arity: 2,
        }
    }
    fn scan_s() -> PhysPlan {
        PhysPlan::Scan {
            part: PartId::new(s(), 0),
            arity: 2,
        }
    }

    #[test]
    fn scan_returns_rows() {
        let t = execute(&scan_r(), &store(), &[]).unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn missing_partition_errors() {
        let bad = PhysPlan::Scan {
            part: PartId::new(RelId(9), 0),
            arity: 1,
        };
        assert_eq!(
            execute(&bad, &store(), &[]),
            Err(ExecError::MissingPartition(PartId::new(RelId(9), 0)))
        );
    }

    #[test]
    fn filter_applies_predicates() {
        let p = PhysPlan::Filter {
            input: Box::new(scan_r()),
            predicates: vec![Predicate::with_const(Col::new(r(), 1), CompOp::Ge, 20i64)],
        };
        let t = execute(&p, &store(), &[]).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn project_reorders_columns() {
        let p = PhysPlan::Project {
            input: Box::new(scan_r()),
            cols: vec![Col::new(r(), 1), Col::new(r(), 0)],
        };
        let t = execute(&p, &store(), &[]).unwrap();
        assert_eq!(t[0], vec![Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn hash_join_matches_keys() {
        let p = PhysPlan::HashJoin {
            left: Box::new(scan_r()),
            right: Box::new(scan_s()),
            left_keys: vec![Col::new(r(), 0)],
            right_keys: vec![Col::new(s(), 0)],
        };
        let t = execute(&p, &store(), &[]).unwrap();
        // a=2 matches twice (rows 2 and 2'), a=3 once → 3 output rows.
        assert_eq!(t.len(), 3);
        for row in &t {
            assert_eq!(row[0], row[2]); // join keys equal
        }
    }

    #[test]
    fn nl_join_cross_product_and_theta() {
        let cross = PhysPlan::NlJoin {
            left: Box::new(scan_r()),
            right: Box::new(scan_s()),
            predicates: vec![],
        };
        assert_eq!(execute(&cross, &store(), &[]).unwrap().len(), 12);
        let theta = PhysPlan::NlJoin {
            left: Box::new(scan_r()),
            right: Box::new(scan_s()),
            predicates: vec![Predicate {
                left: Col::new(r(), 0),
                op: CompOp::Lt,
                right: Operand::Col(Col::new(s(), 0)),
            }],
        };
        let t = execute(&theta, &store(), &[]).unwrap();
        assert_eq!(t.len(), 8); // pairs with r.a < s.a
    }

    #[test]
    fn hash_join_agrees_with_nl_join() {
        let hj = PhysPlan::HashJoin {
            left: Box::new(scan_r()),
            right: Box::new(scan_s()),
            left_keys: vec![Col::new(r(), 0)],
            right_keys: vec![Col::new(s(), 0)],
        };
        let nl = PhysPlan::NlJoin {
            left: Box::new(scan_r()),
            right: Box::new(scan_s()),
            predicates: vec![Predicate::eq_cols(Col::new(r(), 0), Col::new(s(), 0))],
        };
        let mut a = execute(&hj, &store(), &[]).unwrap();
        let mut b = execute(&nl, &store(), &[]).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn union_concatenates() {
        let u = PhysPlan::Union {
            inputs: vec![scan_r(), scan_r()],
        };
        assert_eq!(execute(&u, &store(), &[]).unwrap().len(), 8);
    }

    #[test]
    fn sort_orders_rows() {
        let p = PhysPlan::Sort {
            input: Box::new(scan_r()),
            keys: vec![Col::new(r(), 1)],
        };
        let t = execute(&p, &store(), &[]).unwrap();
        let vals: Vec<i64> = t.iter().map(|row| row[1].as_int().unwrap()).collect();
        assert_eq!(vals, vec![10, 20, 25, 30]);
    }

    #[test]
    fn aggregate_grouped() {
        let p = PhysPlan::HashAggregate {
            input: Box::new(scan_r()),
            group_by: vec![Col::new(r(), 0)],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(Col::new(r(), 1)),
                },
                AggSpec {
                    func: AggFunc::Count,
                    arg: None,
                },
            ],
        };
        let mut t = execute(&p, &store(), &[]).unwrap();
        t.sort();
        assert_eq!(t.len(), 3);
        // Group a=2: sum 45 (stays Int over int inputs), count 2.
        let g2 = t.iter().find(|row| row[0] == Value::Int(2)).unwrap();
        assert_eq!(g2[1], Value::Int(45));
        assert_eq!(g2[2], Value::Int(2));
    }

    #[test]
    fn empty_scalar_sum_min_max_are_null() {
        let p = PhysPlan::HashAggregate {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(scan_r()),
                predicates: vec![Predicate::with_const(Col::new(r(), 0), CompOp::Gt, 100i64)],
            }),
            group_by: vec![],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(Col::new(r(), 1)),
                },
                AggSpec {
                    func: AggFunc::Min,
                    arg: Some(Col::new(r(), 1)),
                },
                AggSpec {
                    func: AggFunc::Max,
                    arg: Some(Col::new(r(), 1)),
                },
                AggSpec {
                    func: AggFunc::Count,
                    arg: None,
                },
            ],
        };
        let t = execute(&p, &store(), &[]).unwrap();
        assert_eq!(
            t,
            vec![vec![Value::Null, Value::Null, Value::Null, Value::Int(0)]]
        );
    }

    #[test]
    fn sum_switches_to_float_on_first_float_input() {
        let mut acc = SumAcc::new();
        acc.add_int(3);
        acc.add_int(4);
        assert_eq!(acc.finish(), Value::Int(7));
        let mut acc = SumAcc::new();
        acc.add_int(3);
        acc.add_float(0.5);
        acc.add_int(1);
        assert_eq!(acc.finish(), Value::Float(4.5));
        // -0.0 canonicalizes to +0.0.
        let mut acc = SumAcc::new();
        acc.add_float(-0.0);
        assert_eq!(acc.finish(), Value::Float(0.0));
        assert_eq!(SumAcc::new().finish(), Value::Null);
    }

    #[test]
    fn scalar_aggregates_on_empty_input() {
        let p = PhysPlan::HashAggregate {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(scan_r()),
                predicates: vec![Predicate::with_const(Col::new(r(), 0), CompOp::Gt, 100i64)],
            }),
            group_by: vec![],
            aggs: vec![AggSpec {
                func: AggFunc::Count,
                arg: None,
            }],
        };
        let t = execute(&p, &store(), &[]).unwrap();
        assert_eq!(t, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn min_max_avg() {
        let p = PhysPlan::HashAggregate {
            input: Box::new(scan_r()),
            group_by: vec![],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Min,
                    arg: Some(Col::new(r(), 1)),
                },
                AggSpec {
                    func: AggFunc::Max,
                    arg: Some(Col::new(r(), 1)),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    arg: Some(Col::new(r(), 1)),
                },
            ],
        };
        let t = execute(&p, &store(), &[]).unwrap();
        assert_eq!(t[0][0], Value::Int(10));
        assert_eq!(t[0][1], Value::Int(30));
        assert_eq!(t[0][2], Value::Float(85.0 / 4.0));
    }

    #[test]
    fn input_slots_resolve() {
        let table = vec![vec![Value::Int(7)]];
        let p = PhysPlan::Input {
            slot: 0,
            schema: vec![Col::new(r(), 0)],
        };
        assert_eq!(
            execute(&p, &store(), std::slice::from_ref(&table)).unwrap(),
            table
        );
        let missing = PhysPlan::Input {
            slot: 3,
            schema: vec![Col::new(r(), 0)],
        };
        assert_eq!(
            execute(&missing, &store(), &[]),
            Err(ExecError::MissingInput(3))
        );
    }

    #[test]
    fn unresolved_column_errors() {
        let p = PhysPlan::Project {
            input: Box::new(scan_r()),
            cols: vec![Col::new(s(), 0)],
        };
        assert!(matches!(
            execute(&p, &store(), &[]),
            Err(ExecError::UnresolvedColumn(_))
        ));
    }

    #[test]
    fn sum_on_string_column_is_type_error() {
        let p = PhysPlan::HashAggregate {
            input: Box::new(scan_s()),
            group_by: vec![],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(Col::new(s(), 1)),
            }],
        };
        assert!(matches!(
            execute(&p, &store(), &[]),
            Err(ExecError::TypeError(_))
        ));
    }
}
