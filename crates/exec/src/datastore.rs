//! In-memory partition storage.

use crate::exec::RowSource;
use crate::{Row, Table};
use qt_catalog::{PartId, PartitionStats, RelId, SchemaDict};
use std::collections::BTreeMap;

/// One node's materialized partitions.
#[derive(Debug, Clone, Default)]
pub struct DataStore {
    partitions: BTreeMap<PartId, Table>,
}

impl DataStore {
    /// An empty store.
    pub fn new() -> Self {
        DataStore::default()
    }

    /// Insert (replacing) the rows of `part`.
    pub fn insert(&mut self, part: PartId, rows: Table) {
        self.partitions.insert(part, rows);
    }

    /// Load a whole relation's rows, routing each row to its partition via
    /// the dictionary's partitioning scheme. Rows matching no partition
    /// (list partitioning gaps) are dropped and counted in the return value.
    pub fn load_relation(&mut self, dict: &SchemaDict, rel: RelId, rows: Table) -> usize {
        let scheme = &dict.rel(rel).partitioning;
        let mut dropped = 0;
        for row in rows {
            match scheme.partition_of(&row) {
                Some(idx) => self
                    .partitions
                    .entry(PartId::new(rel, idx))
                    .or_default()
                    .push(row),
                None => dropped += 1,
            }
        }
        // Make sure every partition exists, even if empty.
        for part in dict.parts_of(rel) {
            self.partitions.entry(part).or_default();
        }
        dropped
    }

    /// Like [`DataStore::load_relation`], but consumes rows from an iterator
    /// so large generated relations stream straight into their partitions
    /// without ever being materialized as one contiguous table.
    pub fn load_relation_iter(
        &mut self,
        dict: &SchemaDict,
        rel: RelId,
        rows: impl Iterator<Item = Row>,
    ) -> usize {
        let scheme = &dict.rel(rel).partitioning;
        let mut dropped = 0;
        for row in rows {
            match scheme.partition_of(&row) {
                Some(idx) => self
                    .partitions
                    .entry(PartId::new(rel, idx))
                    .or_default()
                    .push(row),
                None => dropped += 1,
            }
        }
        for part in dict.parts_of(rel) {
            self.partitions.entry(part).or_default();
        }
        dropped
    }

    /// All stored partitions.
    pub fn parts(&self) -> impl Iterator<Item = PartId> + '_ {
        self.partitions.keys().copied()
    }

    /// Exact statistics of a stored partition, computed from its rows.
    pub fn stats_of(&self, dict: &SchemaDict, part: PartId) -> Option<PartitionStats> {
        let rows = self.partitions.get(&part)?;
        let arity = dict.rel(part.rel).schema.arity();
        Some(PartitionStats::from_rows(arity, rows))
    }

    /// Copy selected partitions into a new store (replica creation).
    pub fn subset(&self, parts: &[PartId]) -> DataStore {
        DataStore {
            partitions: parts
                .iter()
                .filter_map(|p| self.partitions.get(p).map(|t| (*p, t.clone())))
                .collect(),
        }
    }

    /// Merge another store into this one (replacing overlapping partitions).
    pub fn merge_from(&mut self, other: &DataStore) {
        for (p, t) in &other.partitions {
            self.partitions.insert(*p, t.clone());
        }
    }

    /// Total stored rows.
    pub fn total_rows(&self) -> usize {
        self.partitions.values().map(Vec::len).sum()
    }
}

impl RowSource for DataStore {
    fn rows_of(&self, part: PartId) -> Option<&[Row]> {
        self.partitions.get(&part).map(|t| t.as_slice())
    }
}

/// A row source over several stores (used by tests and the reference
/// evaluator to see the whole federation's data at once).
pub struct UnionSource<'a>(pub Vec<&'a DataStore>);

impl RowSource for UnionSource<'_> {
    fn rows_of(&self, part: PartId) -> Option<&[Row]> {
        self.0.iter().find_map(|s| s.rows_of(part))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{AttrType, CatalogBuilder, NodeId, Partitioning, RelationSchema, Value};

    fn dict() -> std::sync::Arc<SchemaDict> {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int), ("grp", AttrType::Str)]),
            Partitioning::List {
                attr: 1,
                groups: vec![vec![Value::str("x")], vec![Value::str("y")]],
            },
        );
        b.set_stats(PartId::new(r, 0), PartitionStats::synthetic(1, &[1, 1]));
        b.set_stats(PartId::new(r, 1), PartitionStats::synthetic(1, &[1, 1]));
        b.place(PartId::new(r, 0), NodeId(0));
        b.place(PartId::new(r, 1), NodeId(0));
        b.build().dict
    }

    #[test]
    fn load_relation_routes_rows() {
        let d = dict();
        let mut store = DataStore::new();
        let dropped = store.load_relation(
            &d,
            RelId(0),
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
                vec![Value::Int(3), Value::str("zzz")], // no partition
            ],
        );
        assert_eq!(dropped, 1);
        assert_eq!(store.rows_of(PartId::new(RelId(0), 0)).unwrap().len(), 1);
        assert_eq!(store.rows_of(PartId::new(RelId(0), 1)).unwrap().len(), 1);
        assert_eq!(store.total_rows(), 2);
    }

    #[test]
    fn stats_reflect_data() {
        let d = dict();
        let mut store = DataStore::new();
        store.load_relation(
            &d,
            RelId(0),
            vec![
                vec![Value::Int(5), Value::str("x")],
                vec![Value::Int(9), Value::str("x")],
            ],
        );
        let s = store.stats_of(&d, PartId::new(RelId(0), 0)).unwrap();
        assert_eq!(s.rows, 2);
        assert_eq!(s.cols[0].min, Some(Value::Int(5)));
        assert_eq!(s.cols[0].max, Some(Value::Int(9)));
    }

    #[test]
    fn subset_and_merge() {
        let d = dict();
        let mut store = DataStore::new();
        store.load_relation(
            &d,
            RelId(0),
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        );
        let replica = store.subset(&[PartId::new(RelId(0), 1)]);
        assert_eq!(replica.total_rows(), 1);
        let mut other = DataStore::new();
        other.merge_from(&replica);
        assert!(other.rows_of(PartId::new(RelId(0), 1)).is_some());
        assert!(other.rows_of(PartId::new(RelId(0), 0)).is_none());
    }

    #[test]
    fn union_source_searches_all_stores() {
        let d = dict();
        let mut a = DataStore::new();
        a.load_relation(&d, RelId(0), vec![vec![Value::Int(1), Value::str("x")]]);
        let b = a.subset(&[PartId::new(RelId(0), 1)]);
        let u = UnionSource(vec![&b, &a]);
        assert!(u.rows_of(PartId::new(RelId(0), 0)).is_some());
        assert!(u.rows_of(PartId::new(RelId(9), 0)).is_none());
    }
}
