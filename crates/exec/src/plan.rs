//! The physical operator tree.
//!
//! Every node carries enough information to compute its *output schema* — an
//! ordered list of [`Col`]s — so predicates and projections can be resolved
//! positionally at execution time without a separate binding pass.

use qt_catalog::PartId;
use qt_query::{AggFunc, Col, Predicate};

/// One aggregate computed by [`PhysPlan::HashAggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated column (`None` = `COUNT(*)`).
    pub arg: Option<Col>,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Scan a stored partition, producing all attributes of its relation as
    /// columns `(rel, 0..arity)`.
    Scan {
        /// The partition to scan.
        part: PartId,
        /// Arity of the relation (fixes the output schema without a dict).
        arity: usize,
    },
    /// A pre-materialized input table (a purchased sub-result) with a known
    /// schema, read from the executor's input slots.
    Input {
        /// Index into the executor's `inputs` array.
        slot: usize,
        /// Schema of the table in the slot.
        schema: Vec<Col>,
    },
    /// Keep rows satisfying all predicates.
    Filter {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// Project to the given columns (which must exist in the input schema).
    Project {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Output columns, in order.
        cols: Vec<Col>,
    },
    /// Hash equi-join on pairwise-equal key columns.
    HashJoin {
        /// Build side.
        left: Box<PhysPlan>,
        /// Probe side.
        right: Box<PhysPlan>,
        /// Join keys: `left_keys[i] = right_keys[i]`.
        left_keys: Vec<Col>,
        /// Right-side join keys.
        right_keys: Vec<Col>,
    },
    /// Sort-merge equi-join: both inputs must already be sorted on their
    /// key columns (the optimizer inserts [`PhysPlan::Sort`] enforcers).
    /// Output is sorted on the keys.
    MergeJoin {
        /// Left input, sorted on `left_keys`.
        left: Box<PhysPlan>,
        /// Right input, sorted on `right_keys`.
        right: Box<PhysPlan>,
        /// Join keys: `left_keys[i] = right_keys[i]`.
        left_keys: Vec<Col>,
        /// Right-side join keys.
        right_keys: Vec<Col>,
    },
    /// Nested-loop theta join (fallback for non-equi predicates; empty
    /// predicate list = cross product).
    NlJoin {
        /// Outer side.
        left: Box<PhysPlan>,
        /// Inner side.
        right: Box<PhysPlan>,
        /// Join predicates evaluated on the concatenated row.
        predicates: Vec<Predicate>,
    },
    /// Concatenation of inputs with identical schemas (`UNION ALL`; unions of
    /// disjoint partitions are duplicate-free by construction).
    Union {
        /// Input plans (at least one).
        inputs: Vec<PhysPlan>,
    },
    /// Sort ascending by the key columns.
    Sort {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Sort keys, major first.
        keys: Vec<Col>,
    },
    /// Hash aggregation: one output row per distinct key combination, with
    /// the group keys first and one column per aggregate after them.
    HashAggregate {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Grouping keys (may be empty for scalar aggregates).
        group_by: Vec<Col>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
}

/// Synthetic column marker for aggregate outputs: aggregates produce fresh
/// columns; we tag them with the argument column (or the first group key /
/// a zero column for `COUNT(*)`) at attribute offset `AGG_ATTR_BASE + i`.
/// Downstream plans re-aggregating partial results address them this way.
pub const AGG_ATTR_BASE: usize = 1_000;

impl PhysPlan {
    /// The output schema: ordered column identities.
    pub fn schema(&self) -> Vec<Col> {
        match self {
            PhysPlan::Scan { part, arity } => (0..*arity).map(|a| Col::new(part.rel, a)).collect(),
            PhysPlan::Input { schema, .. } => schema.clone(),
            PhysPlan::Filter { input, .. } | PhysPlan::Sort { input, .. } => input.schema(),
            PhysPlan::Project { cols, .. } => cols.clone(),
            PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::MergeJoin { left, right, .. }
            | PhysPlan::NlJoin { left, right, .. } => {
                let mut s = left.schema();
                s.extend(right.schema());
                s
            }
            PhysPlan::Union { inputs } => inputs[0].schema(),
            PhysPlan::HashAggregate { group_by, aggs, .. } => {
                let mut s = group_by.clone();
                for (i, a) in aggs.iter().enumerate() {
                    let base = a
                        .arg
                        .or(group_by.first().copied())
                        .unwrap_or(Col::new(qt_catalog::RelId(0), 0));
                    s.push(Col::new(base.rel, AGG_ATTR_BASE + i * 10_000 + base.attr));
                }
                s
            }
        }
    }

    /// Number of operator nodes (for plan-complexity accounting).
    pub fn node_count(&self) -> usize {
        1 + match self {
            PhysPlan::Scan { .. } | PhysPlan::Input { .. } => 0,
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::HashAggregate { input, .. } => input.node_count(),
            PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::MergeJoin { left, right, .. }
            | PhysPlan::NlJoin { left, right, .. } => left.node_count() + right.node_count(),
            PhysPlan::Union { inputs } => inputs.iter().map(PhysPlan::node_count).sum(),
        }
    }

    /// All partitions scanned anywhere in the tree.
    pub fn scanned_parts(&self) -> Vec<PartId> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let PhysPlan::Scan { part, .. } = p {
                out.push(*part);
            }
        });
        out
    }

    /// All input slots referenced anywhere in the tree.
    pub fn input_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let PhysPlan::Input { slot, .. } = p {
                out.push(*slot);
            }
        });
        out
    }

    fn visit(&self, f: &mut impl FnMut(&PhysPlan)) {
        f(self);
        match self {
            PhysPlan::Scan { .. } | PhysPlan::Input { .. } => {}
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::HashAggregate { input, .. } => input.visit(f),
            PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::MergeJoin { left, right, .. }
            | PhysPlan::NlJoin { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            PhysPlan::Union { inputs } => {
                for i in inputs {
                    i.visit(f);
                }
            }
        }
    }

    /// Pretty-print as an indented tree.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.pretty_into(&mut s, 0);
        s
    }

    fn pretty_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PhysPlan::Scan { part, .. } => {
                let _ = writeln!(out, "{pad}Scan {part}");
            }
            PhysPlan::Input { slot, schema } => {
                let _ = writeln!(out, "{pad}Input slot={slot} ({} cols)", schema.len());
            }
            PhysPlan::Filter { input, predicates } => {
                let _ = writeln!(out, "{pad}Filter ({} preds)", predicates.len());
                input.pretty_into(out, depth + 1);
            }
            PhysPlan::Project { input, cols } => {
                let _ = writeln!(out, "{pad}Project ({} cols)", cols.len());
                input.pretty_into(out, depth + 1);
            }
            PhysPlan::HashJoin {
                left,
                right,
                left_keys,
                ..
            } => {
                let _ = writeln!(out, "{pad}HashJoin ({} keys)", left_keys.len());
                left.pretty_into(out, depth + 1);
                right.pretty_into(out, depth + 1);
            }
            PhysPlan::MergeJoin {
                left,
                right,
                left_keys,
                ..
            } => {
                let _ = writeln!(out, "{pad}MergeJoin ({} keys)", left_keys.len());
                left.pretty_into(out, depth + 1);
                right.pretty_into(out, depth + 1);
            }
            PhysPlan::NlJoin {
                left,
                right,
                predicates,
            } => {
                let _ = writeln!(out, "{pad}NlJoin ({} preds)", predicates.len());
                left.pretty_into(out, depth + 1);
                right.pretty_into(out, depth + 1);
            }
            PhysPlan::Union { inputs } => {
                let _ = writeln!(out, "{pad}Union ({} inputs)", inputs.len());
                for i in inputs {
                    i.pretty_into(out, depth + 1);
                }
            }
            PhysPlan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort ({} keys)", keys.len());
                input.pretty_into(out, depth + 1);
            }
            PhysPlan::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashAggregate ({} keys, {} aggs)",
                    group_by.len(),
                    aggs.len()
                );
                input.pretty_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::RelId;

    fn scan(rel: u32, arity: usize) -> PhysPlan {
        PhysPlan::Scan {
            part: PartId::new(RelId(rel), 0),
            arity,
        }
    }

    #[test]
    fn scan_schema_enumerates_attrs() {
        let s = scan(1, 3).schema();
        assert_eq!(
            s,
            vec![
                Col::new(RelId(1), 0),
                Col::new(RelId(1), 1),
                Col::new(RelId(1), 2)
            ]
        );
    }

    #[test]
    fn join_schema_concatenates() {
        let j = PhysPlan::HashJoin {
            left: Box::new(scan(0, 2)),
            right: Box::new(scan(1, 1)),
            left_keys: vec![Col::new(RelId(0), 0)],
            right_keys: vec![Col::new(RelId(1), 0)],
        };
        assert_eq!(j.schema().len(), 3);
        assert_eq!(j.node_count(), 3);
    }

    #[test]
    fn aggregate_schema_appends_fresh_columns() {
        let a = PhysPlan::HashAggregate {
            input: Box::new(scan(0, 2)),
            group_by: vec![Col::new(RelId(0), 1)],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(Col::new(RelId(0), 0)),
            }],
        };
        let s = a.schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], Col::new(RelId(0), 1));
        assert!(s[1].attr >= AGG_ATTR_BASE);
    }

    #[test]
    fn scanned_parts_and_slots_collected() {
        let p = PhysPlan::Union {
            inputs: vec![
                scan(0, 1),
                PhysPlan::Input {
                    slot: 2,
                    schema: vec![Col::new(RelId(0), 0)],
                },
            ],
        };
        assert_eq!(p.scanned_parts(), vec![PartId::new(RelId(0), 0)]);
        assert_eq!(p.input_slots(), vec![2]);
    }

    #[test]
    fn pretty_prints_tree() {
        let j = PhysPlan::Filter {
            input: Box::new(scan(0, 2)),
            predicates: vec![],
        };
        let s = j.pretty();
        assert!(s.contains("Filter"));
        assert!(s.contains("  Scan"));
    }
}
