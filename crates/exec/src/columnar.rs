//! Columnar vectorized executor.
//!
//! Executes the same [`PhysPlan`] trees as the row executor in
//! [`crate::exec`], but operator-at-a-time over typed column batches instead
//! of row-at-a-time over `Vec<Value>` rows:
//!
//! * [`ColBatch`] — up to `batch_rows` (default 1024) rows as typed column
//!   vectors (`Vec<i64>` / `Vec<f64>` / dictionary-coded strings) with
//!   validity bitmaps for NULLs, plus a `Mixed` fallback for dynamically
//!   typed columns;
//! * vectorized filter/project kernels over column slices;
//! * hash join build/probe over column keys with batch-wise probe output
//!   (probe batches run in parallel via `qt-par`);
//! * hash aggregation over grouped batches;
//! * grace-hash spilling: join build sides and aggregate state whose input
//!   exceeds [`ColumnarConfig::mem_budget_bytes`] partition to disk via the
//!   hand-rolled framing in [`crate::spill`] and are processed one
//!   partition at a time.
//!
//! The row executor stays the correctness oracle: for every plan,
//! [`execute_columnar`] returns a table **bit-identical** to
//! [`crate::execute`] — same rows in the same order — whatever the batch
//! size, memory budget (spill on/off), or `QT_THREADS`. Spilled operators
//! tag every row with a sequence number and restore the oracle's order when
//! merging partitions; parallel sections map over fixed batch boundaries and
//! reassemble in order. Per-operator wall-clock timings and row counts are
//! recorded in [`ColExecStats::timings`] ([`OpTiming`]) — the measurements
//! the `qt-cost` calibration loop consumes.

use crate::error::ExecError;
use crate::exec::{AggState, RowSource};
use crate::plan::{AggSpec, PhysPlan};
use crate::spill::{SpillFile, SpillWriter};
use crate::trace::OpTiming;
use crate::{Row, Table};
use qt_catalog::{PartId, Value};
use qt_query::{AggFunc, Col, CompOp, Operand, Predicate};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Default rows per column batch.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// Knobs for the columnar executor. The defaults (1024-row batches,
/// unlimited memory, 8 spill partitions) match the row executor's behavior
/// exactly; every setting changes only performance, never results.
#[derive(Debug, Clone)]
pub struct ColumnarConfig {
    /// Rows per batch produced by scans and inputs.
    pub batch_rows: usize,
    /// Memory budget for a hash-join build side or hash-aggregate input;
    /// above it the operator grace-hash partitions to disk.
    pub mem_budget_bytes: usize,
    /// Number of spill partitions per spilling operator.
    pub spill_partitions: usize,
}

impl Default for ColumnarConfig {
    fn default() -> Self {
        ColumnarConfig {
            batch_rows: DEFAULT_BATCH_ROWS,
            mem_budget_bytes: usize::MAX,
            spill_partitions: 8,
        }
    }
}

/// Counters and per-operator timings from one columnar execution.
#[derive(Debug, Clone, Default)]
pub struct ColExecStats {
    /// Spill partition files written (build + probe + aggregate inputs).
    pub spill_files: u64,
    /// Rows written to spill files.
    pub spill_rows: u64,
    /// Bytes written to spill files.
    pub spill_bytes: u64,
    /// Per-operator measured timings, post-order (children before parents).
    pub timings: Vec<OpTiming>,
}

// ---------------------------------------------------------------------------
// Column batches
// ---------------------------------------------------------------------------

/// Validity bitmap: `None` = all rows valid; bit set = valid.
type Validity = Option<Vec<u64>>;

fn bit_get(v: &Validity, i: usize) -> bool {
    match v {
        None => true,
        Some(words) => words[i / 64] >> (i % 64) & 1 == 1,
    }
}

fn all_valid_words(len: usize) -> Vec<u64> {
    vec![u64::MAX; len.div_ceil(64)]
}

fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

/// One typed column of a batch.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers, with NULLs marked invalid in the bitmap.
    Int { vals: Vec<i64>, validity: Validity },
    /// 64-bit floats (bit-exact; never reordered within a column).
    Float { vals: Vec<f64>, validity: Validity },
    /// Dictionary-coded strings: `codes[i]` indexes `dict`.
    Str {
        dict: Vec<Arc<str>>,
        codes: Vec<u32>,
        validity: Validity,
    },
    /// Fallback for columns mixing value types (rare: only hand-built data).
    Mixed(Vec<Value>),
}

impl Column {
    /// Approximate heap bytes, used for spill budgeting.
    pub fn bytes(&self) -> usize {
        match self {
            Column::Int { vals, validity } => {
                vals.len() * 8 + validity.as_ref().map_or(0, |w| w.len() * 8)
            }
            Column::Float { vals, validity } => {
                vals.len() * 8 + validity.as_ref().map_or(0, |w| w.len() * 8)
            }
            Column::Str {
                dict,
                codes,
                validity,
            } => {
                codes.len() * 4
                    + dict.iter().map(|s| s.len()).sum::<usize>()
                    + validity.as_ref().map_or(0, |w| w.len() * 8)
            }
            Column::Mixed(v) => v.iter().map(|x| x.byte_width() as usize + 8).sum(),
        }
    }

    /// Reconstruct the `Value` at row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int { vals, validity } => {
                if bit_get(validity, i) {
                    Value::Int(vals[i])
                } else {
                    Value::Null
                }
            }
            Column::Float { vals, validity } => {
                if bit_get(validity, i) {
                    Value::Float(vals[i])
                } else {
                    Value::Null
                }
            }
            Column::Str {
                dict,
                codes,
                validity,
            } => {
                if bit_get(validity, i) {
                    Value::Str(dict[codes[i] as usize].clone())
                } else {
                    Value::Null
                }
            }
            Column::Mixed(v) => v[i].clone(),
        }
    }

    /// Gather the rows at `idx` into a new column (vectorized take).
    fn take(&self, idx: &[u32]) -> Column {
        let gather_validity = |validity: &Validity| -> Validity {
            validity.as_ref().map(|_| {
                let mut words = all_valid_words(idx.len());
                for (out, &i) in idx.iter().enumerate() {
                    if !bit_get(validity, i as usize) {
                        bit_clear(&mut words, out);
                    }
                }
                words
            })
        };
        match self {
            Column::Int { vals, validity } => Column::Int {
                vals: idx.iter().map(|&i| vals[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            Column::Float { vals, validity } => Column::Float {
                vals: idx.iter().map(|&i| vals[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            Column::Str {
                dict,
                codes,
                validity,
            } => Column::Str {
                dict: dict.clone(),
                codes: idx.iter().map(|&i| codes[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            Column::Mixed(v) => Column::Mixed(idx.iter().map(|&i| v[i as usize].clone()).collect()),
        }
    }

    /// Build a typed column from row `col` of `rows`.
    fn from_rows(rows: &[Row], col: usize) -> Column {
        let (mut ints, mut floats, mut strs, mut nulls) = (false, false, false, false);
        for r in rows {
            match &r[col] {
                Value::Int(_) => ints = true,
                Value::Float(_) => floats = true,
                Value::Str(_) => strs = true,
                Value::Null => nulls = true,
            }
        }
        let n = rows.len();
        let validity_from = |rows: &[Row]| -> Validity {
            if !nulls {
                return None;
            }
            let mut words = all_valid_words(n);
            for (i, r) in rows.iter().enumerate() {
                if r[col].is_null() {
                    bit_clear(&mut words, i);
                }
            }
            Some(words)
        };
        match (ints, floats, strs) {
            (true, false, false) | (false, false, false) => Column::Int {
                vals: rows.iter().map(|r| r[col].as_int().unwrap_or(0)).collect(),
                validity: if ints {
                    validity_from(rows)
                } else {
                    Some(vec![0; n.div_ceil(64)])
                },
            },
            (false, true, false) => Column::Float {
                vals: rows
                    .iter()
                    .map(|r| match &r[col] {
                        Value::Float(x) => *x,
                        _ => 0.0,
                    })
                    .collect(),
                validity: validity_from(rows),
            },
            (false, false, true) => {
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut lookup: HashMap<Arc<str>, u32> = HashMap::new();
                let codes = rows
                    .iter()
                    .map(|r| match &r[col] {
                        Value::Str(s) => *lookup.entry(s.clone()).or_insert_with(|| {
                            dict.push(s.clone());
                            (dict.len() - 1) as u32
                        }),
                        _ => 0,
                    })
                    .collect();
                Column::Str {
                    dict,
                    codes,
                    validity: validity_from(rows),
                }
            }
            _ => Column::Mixed(rows.iter().map(|r| r[col].clone()).collect()),
        }
    }
}

/// A batch of rows in columnar layout. All columns have length `len`.
#[derive(Debug, Clone)]
pub struct ColBatch {
    /// Number of rows.
    pub len: usize,
    /// One typed column per schema position.
    pub cols: Vec<Column>,
}

impl ColBatch {
    /// Convert a row slice (all rows of width `width`) into one batch.
    pub fn from_rows(rows: &[Row], width: usize) -> ColBatch {
        ColBatch {
            len: rows.len(),
            cols: (0..width).map(|c| Column::from_rows(rows, c)).collect(),
        }
    }

    /// The `Value` at `(col, row)`.
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.cols[col].value_at(row)
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.cols.iter().map(|c| c.value_at(i)).collect()
    }

    /// Approximate heap bytes.
    pub fn bytes(&self) -> usize {
        self.cols.iter().map(Column::bytes).sum()
    }

    fn gather(&self, idx: &[u32]) -> ColBatch {
        ColBatch {
            len: idx.len(),
            cols: self.cols.iter().map(|c| c.take(idx)).collect(),
        }
    }

    fn hstack(mut self, right: ColBatch) -> ColBatch {
        debug_assert_eq!(self.len, right.len);
        self.cols.extend(right.cols);
        self
    }
}

/// Chunk rows into batches of `batch_rows`.
pub fn rows_to_batches(rows: &[Row], width: usize, batch_rows: usize) -> Vec<ColBatch> {
    let step = batch_rows.max(1);
    rows.chunks(step)
        .map(|chunk| ColBatch::from_rows(chunk, width))
        .collect()
}

/// Flatten batches back into rows, preserving order.
pub fn batches_to_rows(batches: &[ColBatch]) -> Table {
    let mut out = Vec::with_capacity(batches.iter().map(|b| b.len).sum());
    for b in batches {
        for i in 0..b.len {
            out.push(b.row(i));
        }
    }
    out
}

fn batches_bytes(batches: &[ColBatch]) -> usize {
    batches.iter().map(ColBatch::bytes).sum()
}

fn batches_rows(batches: &[ColBatch]) -> usize {
    batches.iter().map(|b| b.len).sum()
}

/// Concatenate batches into one (for join build sides). Columns keep their
/// typed representation when every batch agrees; otherwise fall back to
/// `Mixed`.
fn concat_batches(batches: &[ColBatch], width: usize) -> ColBatch {
    let total: usize = batches_rows(batches);
    let mut cols = Vec::with_capacity(width);
    for c in 0..width {
        cols.push(concat_columns(batches, c, total));
    }
    ColBatch { len: total, cols }
}

fn concat_columns(batches: &[ColBatch], c: usize, total: usize) -> Column {
    let all_int = batches
        .iter()
        .all(|b| matches!(b.cols[c], Column::Int { .. }));
    let all_float = batches
        .iter()
        .all(|b| matches!(b.cols[c], Column::Float { .. }));
    let all_str = batches
        .iter()
        .all(|b| matches!(b.cols[c], Column::Str { .. }));
    let merge_validity = |parts: Vec<(&Validity, usize)>| -> Validity {
        if parts.iter().all(|(v, _)| v.is_none()) {
            return None;
        }
        let mut words = all_valid_words(total);
        let mut at = 0;
        for (v, len) in parts {
            for i in 0..len {
                if !bit_get(v, i) {
                    bit_clear(&mut words, at + i);
                }
            }
            at += len;
        }
        Some(words)
    };
    if all_int {
        let mut vals = Vec::with_capacity(total);
        let mut parts = Vec::new();
        for b in batches {
            if let Column::Int { vals: v, validity } = &b.cols[c] {
                vals.extend_from_slice(v);
                parts.push((validity, v.len()));
            }
        }
        return Column::Int {
            vals,
            validity: merge_validity(parts),
        };
    }
    if all_float {
        let mut vals = Vec::with_capacity(total);
        let mut parts = Vec::new();
        for b in batches {
            if let Column::Float { vals: v, validity } = &b.cols[c] {
                vals.extend_from_slice(v);
                parts.push((validity, v.len()));
            }
        }
        return Column::Float {
            vals,
            validity: merge_validity(parts),
        };
    }
    if all_str {
        let mut dict: Vec<Arc<str>> = Vec::new();
        let mut lookup: HashMap<Arc<str>, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(total);
        let mut parts = Vec::new();
        for b in batches {
            if let Column::Str {
                dict: d,
                codes: cs,
                validity,
            } = &b.cols[c]
            {
                let remap: Vec<u32> = d
                    .iter()
                    .map(|s| {
                        *lookup.entry(s.clone()).or_insert_with(|| {
                            dict.push(s.clone());
                            (dict.len() - 1) as u32
                        })
                    })
                    .collect();
                codes.extend(cs.iter().map(|&code| remap[code as usize]));
                parts.push((validity, cs.len()));
            }
        }
        return Column::Str {
            dict,
            codes,
            validity: merge_validity(parts),
        };
    }
    let mut vals = Vec::with_capacity(total);
    for b in batches {
        for i in 0..b.len {
            vals.push(b.cols[c].value_at(i));
        }
    }
    Column::Mixed(vals)
}

// ---------------------------------------------------------------------------
// Lowering: PhysPlan → ColOp
// ---------------------------------------------------------------------------

/// A predicate with schema positions resolved at lowering time.
#[derive(Debug, Clone)]
struct LoweredPred {
    left: usize,
    op: CompOp,
    right: LoweredOperand,
}

#[derive(Debug, Clone)]
enum LoweredOperand {
    Const(Value),
    Col(usize),
}

/// A lowered columnar operator with its output arity.
#[derive(Debug, Clone)]
pub struct ColOp {
    width: usize,
    kind: ColKind,
}

#[derive(Debug, Clone)]
enum ColKind {
    Scan {
        part: PartId,
    },
    Input {
        slot: usize,
    },
    Filter {
        input: Box<ColOp>,
        preds: Vec<LoweredPred>,
    },
    Project {
        input: Box<ColOp>,
        cols: Vec<usize>,
    },
    HashJoin {
        build: Box<ColOp>,
        probe: Box<ColOp>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
    },
    MergeJoin {
        left: Box<ColOp>,
        right: Box<ColOp>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
    },
    NlJoin {
        left: Box<ColOp>,
        right: Box<ColOp>,
        preds: Vec<LoweredPred>,
    },
    Union {
        inputs: Vec<ColOp>,
    },
    Sort {
        input: Box<ColOp>,
        keys: Vec<usize>,
    },
    HashAggregate {
        input: Box<ColOp>,
        key_cols: Vec<usize>,
        aggs: Vec<(AggFunc, Option<usize>)>,
    },
}

fn position(schema: &[Col], col: Col) -> Result<usize, ExecError> {
    schema
        .iter()
        .position(|c| *c == col)
        .ok_or(ExecError::UnresolvedColumn(col))
}

fn lower_preds(preds: &[Predicate], schema: &[Col]) -> Result<Vec<LoweredPred>, ExecError> {
    preds
        .iter()
        .map(|p| {
            Ok(LoweredPred {
                left: position(schema, p.left)?,
                op: p.op,
                right: match &p.right {
                    Operand::Const(v) => LoweredOperand::Const(v.clone()),
                    Operand::Col(c) => LoweredOperand::Col(position(schema, *c)?),
                },
            })
        })
        .collect()
}

/// Lower a physical plan to the columnar operator tree — the plan→columnar
/// boundary. All column references are resolved to schema positions here, so
/// execution never touches `Col` identities again.
pub fn lower(plan: &PhysPlan) -> Result<ColOp, ExecError> {
    let width = plan.schema().len();
    let kind = match plan {
        PhysPlan::Scan { part, .. } => ColKind::Scan { part: *part },
        PhysPlan::Input { slot, .. } => ColKind::Input { slot: *slot },
        PhysPlan::Filter { input, predicates } => ColKind::Filter {
            preds: lower_preds(predicates, &input.schema())?,
            input: Box::new(lower(input)?),
        },
        PhysPlan::Project { input, cols } => {
            let schema = input.schema();
            ColKind::Project {
                cols: cols
                    .iter()
                    .map(|c| position(&schema, *c))
                    .collect::<Result<_, _>>()?,
                input: Box::new(lower(input)?),
            }
        }
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let ls = left.schema();
            let rs = right.schema();
            ColKind::HashJoin {
                build_keys: left_keys
                    .iter()
                    .map(|c| position(&ls, *c))
                    .collect::<Result<_, _>>()?,
                probe_keys: right_keys
                    .iter()
                    .map(|c| position(&rs, *c))
                    .collect::<Result<_, _>>()?,
                build: Box::new(lower(left)?),
                probe: Box::new(lower(right)?),
            }
        }
        PhysPlan::MergeJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let ls = left.schema();
            let rs = right.schema();
            ColKind::MergeJoin {
                left_keys: left_keys
                    .iter()
                    .map(|c| position(&ls, *c))
                    .collect::<Result<_, _>>()?,
                right_keys: right_keys
                    .iter()
                    .map(|c| position(&rs, *c))
                    .collect::<Result<_, _>>()?,
                left: Box::new(lower(left)?),
                right: Box::new(lower(right)?),
            }
        }
        PhysPlan::NlJoin {
            left,
            right,
            predicates,
        } => ColKind::NlJoin {
            preds: lower_preds(predicates, &plan.schema())?,
            left: Box::new(lower(left)?),
            right: Box::new(lower(right)?),
        },
        PhysPlan::Union { inputs } => ColKind::Union {
            inputs: inputs.iter().map(lower).collect::<Result<_, _>>()?,
        },
        PhysPlan::Sort { input, keys } => {
            let schema = input.schema();
            ColKind::Sort {
                keys: keys
                    .iter()
                    .map(|c| position(&schema, *c))
                    .collect::<Result<_, _>>()?,
                input: Box::new(lower(input)?),
            }
        }
        PhysPlan::HashAggregate {
            input,
            group_by,
            aggs,
        } => {
            let schema = input.schema();
            ColKind::HashAggregate {
                key_cols: group_by
                    .iter()
                    .map(|c| position(&schema, *c))
                    .collect::<Result<_, _>>()?,
                aggs: aggs
                    .iter()
                    .map(|AggSpec { func, arg }| {
                        Ok((*func, arg.map(|c| position(&schema, c)).transpose()?))
                    })
                    .collect::<Result<Vec<_>, ExecError>>()?,
                input: Box::new(lower(input)?),
            }
        }
    };
    Ok(ColOp { width, kind })
}

// ---------------------------------------------------------------------------
// Filter kernels
// ---------------------------------------------------------------------------

fn ord_ok(op: CompOp) -> fn(Ordering) -> bool {
    match op {
        CompOp::Eq => |o| o == Ordering::Equal,
        CompOp::Ne => |o| o != Ordering::Equal,
        CompOp::Lt => |o| o == Ordering::Less,
        CompOp::Le => |o| o != Ordering::Greater,
        CompOp::Gt => |o| o == Ordering::Greater,
        CompOp::Ge => |o| o != Ordering::Less,
    }
}

/// AND one predicate into `mask`, vectorized per column type.
fn apply_pred(batch: &ColBatch, pred: &LoweredPred, mask: &mut [bool]) {
    let ok = ord_ok(pred.op);
    match (&batch.cols[pred.left], &pred.right) {
        // Int column vs Int constant: the hot kernel.
        (
            Column::Int {
                vals,
                validity: None,
            },
            LoweredOperand::Const(Value::Int(c)),
        ) => {
            for (m, v) in mask.iter_mut().zip(vals) {
                *m &= ok(v.cmp(c));
            }
        }
        // Float column vs Float constant (total order, same as Value::cmp).
        (
            Column::Float {
                vals,
                validity: None,
            },
            LoweredOperand::Const(Value::Float(c)),
        ) => {
            for (m, v) in mask.iter_mut().zip(vals) {
                *m &= ok(v.total_cmp(c));
            }
        }
        // Str column vs Str constant: compare each dict entry once.
        (
            Column::Str {
                dict,
                codes,
                validity: None,
            },
            LoweredOperand::Const(Value::Str(c)),
        ) => {
            let per_code: Vec<bool> = dict.iter().map(|s| ok(s.as_ref().cmp(c))).collect();
            for (m, code) in mask.iter_mut().zip(codes) {
                *m &= per_code[*code as usize];
            }
        }
        // Int-Int column comparison.
        (
            Column::Int {
                vals: a,
                validity: None,
            },
            LoweredOperand::Col(rc),
        ) if matches!(&batch.cols[*rc], Column::Int { validity: None, .. }) => {
            if let Column::Int { vals: b, .. } = &batch.cols[*rc] {
                for i in 0..mask.len() {
                    mask[i] &= ok(a[i].cmp(&b[i]));
                }
            }
        }
        // Everything else (mixed types, NULLs, cross-type constants):
        // fall back to Value comparison, which is the oracle semantics.
        _ => {
            for (i, m) in mask.iter_mut().enumerate() {
                let l = batch.value_at(pred.left, i);
                let ok = match &pred.right {
                    LoweredOperand::Const(v) => pred.op.eval(&l, v),
                    LoweredOperand::Col(c) => pred.op.eval(&l, &batch.value_at(*c, i)),
                };
                *m &= ok;
            }
        }
    }
}

fn filter_batch(batch: &ColBatch, preds: &[LoweredPred]) -> ColBatch {
    let mut mask = vec![true; batch.len];
    for p in preds {
        apply_pred(batch, p, &mut mask);
    }
    let idx: Vec<u32> = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &m)| m.then_some(i as u32))
        .collect();
    if idx.len() == batch.len {
        return batch.clone();
    }
    batch.gather(&idx)
}

// ---------------------------------------------------------------------------
// Hash-join machinery
// ---------------------------------------------------------------------------

/// Build-side hash table: either specialized on a single non-null Int key or
/// generic over `Vec<Value>` keys. Values are row indices into the
/// concatenated build batch, in build order — matching the row executor's
/// per-key insertion order.
enum JoinTable {
    Int(HashMap<i64, Vec<u32>>),
    Generic(HashMap<Vec<Value>, Vec<u32>>),
}

fn build_join_table(build: &ColBatch, keys: &[usize]) -> JoinTable {
    if keys.len() == 1 {
        if let Column::Int {
            vals,
            validity: None,
        } = &build.cols[keys[0]]
        {
            let mut t: HashMap<i64, Vec<u32>> = HashMap::with_capacity(vals.len());
            for (i, &v) in vals.iter().enumerate() {
                t.entry(v).or_default().push(i as u32);
            }
            return JoinTable::Int(t);
        }
    }
    let mut t: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(build.len);
    for i in 0..build.len {
        let key: Vec<Value> = keys.iter().map(|&k| build.value_at(k, i)).collect();
        t.entry(key).or_default().push(i as u32);
    }
    JoinTable::Generic(t)
}

/// Probe one batch; returns (build indices, probe indices) of matches, in
/// probe-row order with build matches in insertion order.
fn probe_batch(batch: &ColBatch, keys: &[usize], table: &JoinTable) -> (Vec<u32>, Vec<u32>) {
    let mut bidx = Vec::new();
    let mut pidx = Vec::new();
    match table {
        JoinTable::Int(t) => {
            // The build side is all non-null Int, so only Int probe keys can
            // match (cross-type Values are never equal).
            if keys.len() == 1 {
                if let Column::Int {
                    vals,
                    validity: None,
                } = &batch.cols[keys[0]]
                {
                    for (i, v) in vals.iter().enumerate() {
                        if let Some(matches) = t.get(v) {
                            for &b in matches {
                                bidx.push(b);
                                pidx.push(i as u32);
                            }
                        }
                    }
                    return (bidx, pidx);
                }
            }
            for i in 0..batch.len {
                if let Value::Int(v) = batch.value_at(keys[0], i) {
                    if let Some(matches) = t.get(&v) {
                        for &b in matches {
                            bidx.push(b);
                            pidx.push(i as u32);
                        }
                    }
                }
            }
        }
        JoinTable::Generic(t) => {
            for i in 0..batch.len {
                let key: Vec<Value> = keys.iter().map(|&k| batch.value_at(k, i)).collect();
                if let Some(matches) = t.get(&key) {
                    for &b in matches {
                        bidx.push(b);
                        pidx.push(i as u32);
                    }
                }
            }
        }
    }
    (bidx, pidx)
}

/// Deterministic spill partition of a key (fixed-seed std hasher).
fn partition_of(key: &[Value], parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    for v in key {
        v.hash(&mut h);
    }
    (h.finish() % parts.max(1) as u64) as usize
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

struct Ctx<'a> {
    source: &'a dyn RowSource,
    inputs: &'a [Table],
    cfg: &'a ColumnarConfig,
}

/// Execute `plan` columnar; results are bit-identical to [`crate::execute`].
pub fn execute_columnar(
    plan: &PhysPlan,
    source: &dyn RowSource,
    inputs: &[Table],
    cfg: &ColumnarConfig,
) -> Result<Table, ExecError> {
    execute_columnar_with_stats(plan, source, inputs, cfg).map(|(t, _)| t)
}

/// Like [`execute_columnar`], also returning spill counters and
/// per-operator timings for the cost-calibration loop.
pub fn execute_columnar_with_stats(
    plan: &PhysPlan,
    source: &dyn RowSource,
    inputs: &[Table],
    cfg: &ColumnarConfig,
) -> Result<(Table, ColExecStats), ExecError> {
    let lowered = lower(plan)?;
    let mut stats = ColExecStats::default();
    let ctx = Ctx {
        source,
        inputs,
        cfg,
    };
    let batches = eval(&lowered, &ctx, &mut stats)?;
    Ok((batches_to_rows(&batches), stats))
}

fn timing(
    stats: &mut ColExecStats,
    op: &'static str,
    rows_in: usize,
    rows_out: usize,
    bytes_in: usize,
    started: Instant,
) {
    stats.timings.push(OpTiming {
        op,
        rows_in: rows_in as u64,
        rows_out: rows_out as u64,
        bytes_in: bytes_in as u64,
        secs: started.elapsed().as_secs_f64(),
    });
}

fn eval(op: &ColOp, ctx: &Ctx<'_>, stats: &mut ColExecStats) -> Result<Vec<ColBatch>, ExecError> {
    let threads = qt_par::max_threads();
    match &op.kind {
        ColKind::Scan { part } => {
            let rows = ctx
                .source
                .rows_of(*part)
                .ok_or(ExecError::MissingPartition(*part))?;
            let t0 = Instant::now();
            let batches = rows_to_batches(rows, op.width, ctx.cfg.batch_rows);
            let bytes = batches_bytes(&batches);
            timing(stats, "Scan", rows.len(), rows.len(), bytes, t0);
            Ok(batches)
        }
        ColKind::Input { slot } => {
            let rows = ctx
                .inputs
                .get(*slot)
                .ok_or(ExecError::MissingInput(*slot))?;
            let t0 = Instant::now();
            let batches = rows_to_batches(rows, op.width, ctx.cfg.batch_rows);
            let bytes = batches_bytes(&batches);
            timing(stats, "Input", rows.len(), rows.len(), bytes, t0);
            Ok(batches)
        }
        ColKind::Filter { input, preds } => {
            let in_batches = eval(input, ctx, stats)?;
            let rows_in = batches_rows(&in_batches);
            let bytes_in = batches_bytes(&in_batches);
            let t0 = Instant::now();
            let out: Vec<ColBatch> =
                qt_par::par_map_ref(&in_batches, threads, |b| filter_batch(b, preds))
                    .into_iter()
                    .filter(|b| b.len > 0)
                    .collect();
            timing(stats, "Filter", rows_in, batches_rows(&out), bytes_in, t0);
            Ok(out)
        }
        ColKind::Project { input, cols } => {
            let in_batches = eval(input, ctx, stats)?;
            let rows_in = batches_rows(&in_batches);
            let bytes_in = batches_bytes(&in_batches);
            let t0 = Instant::now();
            let out: Vec<ColBatch> = in_batches
                .iter()
                .map(|b| ColBatch {
                    len: b.len,
                    cols: cols.iter().map(|&c| b.cols[c].clone()).collect(),
                })
                .collect();
            timing(stats, "Project", rows_in, rows_in, bytes_in, t0);
            Ok(out)
        }
        ColKind::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
        } => {
            let build_batches = eval(build, ctx, stats)?;
            let probe_batches = eval(probe, ctx, stats)?;
            hash_join(
                &build_batches,
                &probe_batches,
                build.width,
                probe.width,
                build_keys,
                probe_keys,
                /* probe_cols_first = */ false,
                &[],
                ctx,
                stats,
            )
        }
        ColKind::MergeJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let lb = eval(left, ctx, stats)?;
            let rb = eval(right, ctx, stats)?;
            let rows_in = batches_rows(&lb) + batches_rows(&rb);
            let bytes_in = batches_bytes(&lb) + batches_bytes(&rb);
            let t0 = Instant::now();
            let lrows = batches_to_rows(&lb);
            let rrows = batches_to_rows(&rb);
            let key_of = |row: &Row, pos: &[usize]| -> Vec<Value> {
                pos.iter().map(|&i| row[i].clone()).collect()
            };
            let mut out_rows: Table = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < lrows.len() && j < rrows.len() {
                let lk = key_of(&lrows[i], left_keys);
                let rk = key_of(&rrows[j], right_keys);
                match lk.cmp(&rk) {
                    Ordering::Less => i += 1,
                    Ordering::Greater => j += 1,
                    Ordering::Equal => {
                        let i_end = (i..lrows.len())
                            .find(|&x| key_of(&lrows[x], left_keys) != lk)
                            .unwrap_or(lrows.len());
                        let j_end = (j..rrows.len())
                            .find(|&x| key_of(&rrows[x], right_keys) != rk)
                            .unwrap_or(rrows.len());
                        for lrow in &lrows[i..i_end] {
                            for rrow in &rrows[j..j_end] {
                                let mut combined = lrow.clone();
                                combined.extend(rrow.iter().cloned());
                                out_rows.push(combined);
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
            let out = rows_to_batches(&out_rows, op.width, ctx.cfg.batch_rows);
            timing(stats, "MergeJoin", rows_in, out_rows.len(), bytes_in, t0);
            Ok(out)
        }
        ColKind::NlJoin { left, right, preds } => {
            let lb = eval(left, ctx, stats)?;
            let rb = eval(right, ctx, stats)?;
            nl_join(&lb, &rb, left.width, right.width, preds, ctx, stats)
        }
        ColKind::Union { inputs } => {
            let mut out = Vec::new();
            let mut rows_in = 0;
            for i in inputs {
                let b = eval(i, ctx, stats)?;
                rows_in += batches_rows(&b);
                out.extend(b);
            }
            let t0 = Instant::now();
            timing(stats, "Union", rows_in, rows_in, 0, t0);
            Ok(out)
        }
        ColKind::Sort { input, keys } => {
            let in_batches = eval(input, ctx, stats)?;
            let rows_in = batches_rows(&in_batches);
            let bytes_in = batches_bytes(&in_batches);
            let t0 = Instant::now();
            let mut rows = batches_to_rows(&in_batches);
            rows.sort_by(|a, b| {
                for &i in keys {
                    let ord = a[i].cmp(&b[i]);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            let out = rows_to_batches(&rows, op.width, ctx.cfg.batch_rows);
            timing(stats, "Sort", rows_in, rows_in, bytes_in, t0);
            Ok(out)
        }
        ColKind::HashAggregate {
            input,
            key_cols,
            aggs,
        } => {
            let in_batches = eval(input, ctx, stats)?;
            hash_aggregate(&in_batches, op.width, key_cols, aggs, ctx, stats)
        }
    }
}

// ---------------------------------------------------------------------------
// Hash join (in-memory + grace spill)
// ---------------------------------------------------------------------------

/// Shared join body. `probe_cols_first` controls output column order:
/// `false` = build ++ probe (HashJoin: build is the plan's left child),
/// `true` = probe ++ build (NlJoin lowered to hash: probe is the left/outer
/// child whose columns come first). `residual` predicates are applied to the
/// combined batch afterwards (positions in combined schema).
#[allow(clippy::too_many_arguments)]
fn hash_join(
    build_batches: &[ColBatch],
    probe_batches: &[ColBatch],
    build_width: usize,
    probe_width: usize,
    build_keys: &[usize],
    probe_keys: &[usize],
    probe_cols_first: bool,
    residual: &[LoweredPred],
    ctx: &Ctx<'_>,
    stats: &mut ColExecStats,
) -> Result<Vec<ColBatch>, ExecError> {
    let threads = qt_par::max_threads();
    let build_bytes = batches_bytes(build_batches);
    let op_build: &'static str = "HashJoinBuild";
    let op_probe: &'static str = "HashJoinProbe";
    if build_bytes > ctx.cfg.mem_budget_bytes {
        return spill_join(
            build_batches,
            probe_batches,
            build_width,
            probe_width,
            build_keys,
            probe_keys,
            probe_cols_first,
            residual,
            ctx,
            stats,
        );
    }
    let t0 = Instant::now();
    let build_all = concat_batches(build_batches, build_width);
    let table = build_join_table(&build_all, build_keys);
    timing(
        stats,
        op_build,
        build_all.len,
        build_all.len,
        build_bytes,
        t0,
    );
    let probe_rows = batches_rows(probe_batches);
    let probe_bytes = batches_bytes(probe_batches);
    let t0 = Instant::now();
    let mut out: Vec<ColBatch> = qt_par::par_map_ref(probe_batches, threads, |pb| {
        let (bidx, pidx) = probe_batch(pb, probe_keys, &table);
        let joined = if probe_cols_first {
            pb.gather(&pidx).hstack(build_all.gather(&bidx))
        } else {
            build_all.gather(&bidx).hstack(pb.gather(&pidx))
        };
        if residual.is_empty() {
            joined
        } else {
            filter_batch(&joined, residual)
        }
    })
    .into_iter()
    .filter(|b| b.len > 0)
    .collect();
    let rows_out = batches_rows(&out);
    timing(stats, op_probe, probe_rows, rows_out, probe_bytes, t0);
    // Normalize away zero-length batch vectors for stable downstream math.
    if rows_out == 0 {
        out.clear();
    }
    Ok(out)
}

/// Grace-hash join: partition both sides to disk by key hash, then join one
/// partition at a time. Rows carry sequence numbers so the merged output is
/// re-sorted into exactly the in-memory (= row executor) order.
#[allow(clippy::too_many_arguments)]
fn spill_join(
    build_batches: &[ColBatch],
    probe_batches: &[ColBatch],
    build_width: usize,
    probe_width: usize,
    build_keys: &[usize],
    probe_keys: &[usize],
    probe_cols_first: bool,
    residual: &[LoweredPred],
    ctx: &Ctx<'_>,
    stats: &mut ColExecStats,
) -> Result<Vec<ColBatch>, ExecError> {
    let parts = ctx.cfg.spill_partitions.max(1);
    let t0 = Instant::now();
    let spill_side =
        |batches: &[ColBatch], keys: &[usize]| -> Result<(Vec<SpillFile>, usize), ExecError> {
            let mut writers: Vec<SpillWriter> = (0..parts)
                .map(|_| SpillWriter::create())
                .collect::<Result<_, _>>()?;
            let mut seq = 0u64;
            for b in batches {
                for i in 0..b.len {
                    let key: Vec<Value> = keys.iter().map(|&k| b.value_at(k, i)).collect();
                    writers[partition_of(&key, parts)].push(seq, &b.row(i))?;
                    seq += 1;
                }
            }
            let files: Vec<SpillFile> = writers
                .into_iter()
                .map(SpillWriter::finish)
                .collect::<Result<_, _>>()?;
            Ok((files, seq as usize))
        };
    let (bfiles, build_rows) = spill_side(build_batches, build_keys)?;
    let (pfiles, probe_rows) = spill_side(probe_batches, probe_keys)?;
    for f in bfiles.iter().chain(&pfiles) {
        stats.spill_files += 1;
        stats.spill_rows += f.rows;
        stats.spill_bytes += f.bytes;
    }
    timing(
        stats,
        "HashJoinBuild",
        build_rows,
        build_rows,
        batches_bytes(build_batches),
        t0,
    );

    let t0 = Instant::now();
    // (probe_seq, build_seq, combined row) — sorted at the end to restore
    // the probe-major, build-insertion-minor oracle order.
    let mut tagged: Vec<(u64, u64, Row)> = Vec::new();
    for (bf, pf) in bfiles.iter().zip(&pfiles) {
        let brows = bf.read_all()?;
        let mut table: HashMap<Vec<Value>, Vec<(u64, Row)>> = HashMap::new();
        for (seq, row) in brows {
            let key: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
            table.entry(key).or_default().push((seq, row));
        }
        for (pseq, prow) in pf.read_all()? {
            let key: Vec<Value> = probe_keys.iter().map(|&k| prow[k].clone()).collect();
            if let Some(matches) = table.get(&key) {
                for (bseq, brow) in matches {
                    let mut combined = if probe_cols_first {
                        let mut c = prow.clone();
                        c.extend(brow.iter().cloned());
                        c
                    } else {
                        let mut c = brow.clone();
                        c.extend(prow.iter().cloned());
                        c
                    };
                    if !residual.is_empty() {
                        let keep = residual.iter().all(|p| {
                            let l = &combined[p.left];
                            match &p.right {
                                LoweredOperand::Const(v) => p.op.eval(l, v),
                                LoweredOperand::Col(c) => p.op.eval(l, &combined[*c]),
                            }
                        });
                        if !keep {
                            continue;
                        }
                    }
                    combined.shrink_to_fit();
                    tagged.push((pseq, *bseq, combined));
                }
            }
        }
    }
    tagged.sort_unstable_by_key(|t| (t.0, t.1));
    let rows: Table = tagged.into_iter().map(|(_, _, r)| r).collect();
    let out = rows_to_batches(&rows, build_width + probe_width, ctx.cfg.batch_rows);
    timing(
        stats,
        "HashJoinProbe",
        probe_rows,
        rows.len(),
        batches_bytes(probe_batches),
        t0,
    );
    Ok(out)
}

/// Nested-loop join. Pure equi-join predicate sets lower to a hash join with
/// the outer (left) side probing — output order (left-major, right
/// insertion-minor) and column order (left ++ right) match the row executor's
/// pair loop exactly. Anything else falls back to the literal pair loop.
fn nl_join(
    lb: &[ColBatch],
    rb: &[ColBatch],
    left_width: usize,
    right_width: usize,
    preds: &[LoweredPred],
    ctx: &Ctx<'_>,
    stats: &mut ColExecStats,
) -> Result<Vec<ColBatch>, ExecError> {
    // Split predicates into cross-side equalities and residuals.
    let mut lkeys = Vec::new();
    let mut rkeys = Vec::new();
    let mut residual = Vec::new();
    for p in preds {
        if p.op == CompOp::Eq {
            if let LoweredOperand::Col(rc) = p.right {
                let (a, b) = (p.left, rc);
                if a < left_width && b >= left_width {
                    lkeys.push(a);
                    rkeys.push(b - left_width);
                    continue;
                }
                if b < left_width && a >= left_width {
                    lkeys.push(b);
                    rkeys.push(a - left_width);
                    continue;
                }
            }
        }
        residual.push(p.clone());
    }
    if !lkeys.is_empty() {
        // Build on the inner (right) side, probe with the outer (left) side.
        return hash_join(
            rb,
            lb,
            right_width,
            left_width,
            &rkeys,
            &lkeys,
            /* probe_cols_first = */ true,
            &residual,
            ctx,
            stats,
        );
    }
    let rows_in = batches_rows(lb) + batches_rows(rb);
    let bytes_in = batches_bytes(lb) + batches_bytes(rb);
    let t0 = Instant::now();
    let lrows = batches_to_rows(lb);
    let rrows = batches_to_rows(rb);
    let mut out_rows: Table = Vec::new();
    for lrow in &lrows {
        for rrow in &rrows {
            let mut combined = lrow.clone();
            combined.extend(rrow.iter().cloned());
            let keep = preds.iter().all(|p| {
                let l = &combined[p.left];
                match &p.right {
                    LoweredOperand::Const(v) => p.op.eval(l, v),
                    LoweredOperand::Col(c) => p.op.eval(l, &combined[*c]),
                }
            });
            if keep {
                out_rows.push(combined);
            }
        }
    }
    let out = rows_to_batches(&out_rows, left_width + right_width, ctx.cfg.batch_rows);
    timing(stats, "NlJoin", rows_in, out_rows.len(), bytes_in, t0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Hash aggregation (in-memory + grace spill)
// ---------------------------------------------------------------------------

/// Group-id assignment: specialized single non-null Int key or generic.
enum GroupKeys {
    Int(HashMap<i64, u32>),
    Generic(HashMap<Vec<Value>, u32>),
}

fn hash_aggregate(
    in_batches: &[ColBatch],
    width: usize,
    key_cols: &[usize],
    aggs: &[(AggFunc, Option<usize>)],
    ctx: &Ctx<'_>,
    stats: &mut ColExecStats,
) -> Result<Vec<ColBatch>, ExecError> {
    let rows_in = batches_rows(in_batches);
    let bytes_in = batches_bytes(in_batches);
    if bytes_in > ctx.cfg.mem_budget_bytes {
        return spill_aggregate(in_batches, width, key_cols, aggs, ctx, stats);
    }
    let t0 = Instant::now();
    let single_int_key = key_cols.len() == 1
        && in_batches
            .iter()
            .all(|b| matches!(b.cols[key_cols[0]], Column::Int { validity: None, .. }));
    let mut keys = if single_int_key {
        GroupKeys::Int(HashMap::new())
    } else {
        GroupKeys::Generic(HashMap::new())
    };
    let mut group_rows: Vec<Vec<Value>> = Vec::new(); // first-seen order
    let mut states: Vec<Vec<AggState>> = Vec::new();
    let mut gids: Vec<u32> = Vec::new();
    for b in in_batches {
        gids.clear();
        gids.reserve(b.len);
        match &mut keys {
            GroupKeys::Int(map) => {
                if let Column::Int { vals, .. } = &b.cols[key_cols[0]] {
                    for &v in vals {
                        let gid = *map.entry(v).or_insert_with(|| {
                            group_rows.push(vec![Value::Int(v)]);
                            states.push(aggs.iter().map(|&(f, _)| AggState::new(f)).collect());
                            (group_rows.len() - 1) as u32
                        });
                        gids.push(gid);
                    }
                }
            }
            GroupKeys::Generic(map) => {
                for i in 0..b.len {
                    let key: Vec<Value> = key_cols.iter().map(|&k| b.value_at(k, i)).collect();
                    let gid = *map.entry(key.clone()).or_insert_with(|| {
                        group_rows.push(key);
                        states.push(aggs.iter().map(|&(f, _)| AggState::new(f)).collect());
                        (group_rows.len() - 1) as u32
                    });
                    gids.push(gid);
                }
            }
        }
        for (j, &(func, arg)) in aggs.iter().enumerate() {
            fold_agg_column(b, &gids, func, arg, j, &mut states)?;
        }
    }
    // Scalar aggregate over zero rows still yields one (NULL-heavy) row.
    if key_cols.is_empty() && group_rows.is_empty() {
        group_rows.push(Vec::new());
        states.push(aggs.iter().map(|&(f, _)| AggState::new(f)).collect());
    }
    let out_rows: Table = group_rows
        .into_iter()
        .zip(states)
        .map(|(mut key, st)| {
            key.extend(st.into_iter().map(AggState::finish));
            key
        })
        .collect();
    let out = rows_to_batches(&out_rows, width, ctx.cfg.batch_rows);
    timing(
        stats,
        "HashAggregate",
        rows_in,
        out_rows.len(),
        bytes_in,
        t0,
    );
    Ok(out)
}

/// Fold one aggregate over a whole batch, vectorized per column type. The
/// per-state fold order is the input row order, identical to the row
/// executor's per-row fold.
fn fold_agg_column(
    b: &ColBatch,
    gids: &[u32],
    func: AggFunc,
    arg: Option<usize>,
    j: usize,
    states: &mut [Vec<AggState>],
) -> Result<(), ExecError> {
    match (func, arg.map(|a| &b.cols[a])) {
        (AggFunc::Count, _) => {
            for &g in gids {
                if let AggState::Count(n) = &mut states[g as usize][j] {
                    *n += 1;
                }
            }
        }
        (
            AggFunc::Sum,
            Some(Column::Int {
                vals,
                validity: None,
            }),
        ) => {
            for (&g, &v) in gids.iter().zip(vals) {
                if let AggState::Sum(acc) = &mut states[g as usize][j] {
                    acc.add_int(v);
                }
            }
        }
        (
            AggFunc::Sum,
            Some(Column::Float {
                vals,
                validity: None,
            }),
        ) => {
            for (&g, &v) in gids.iter().zip(vals) {
                if let AggState::Sum(acc) = &mut states[g as usize][j] {
                    acc.add_float(v);
                }
            }
        }
        _ => {
            for (i, &g) in gids.iter().enumerate() {
                let v = arg.map(|a| b.value_at(a, i));
                states[g as usize][j].fold(v.as_ref())?;
            }
        }
    }
    Ok(())
}

/// Grace-hash aggregation: partition input rows to disk by group-key hash,
/// fold one partition's groups at a time, then emit groups in global
/// first-seen order via carried sequence numbers.
fn spill_aggregate(
    in_batches: &[ColBatch],
    width: usize,
    key_cols: &[usize],
    aggs: &[(AggFunc, Option<usize>)],
    ctx: &Ctx<'_>,
    stats: &mut ColExecStats,
) -> Result<Vec<ColBatch>, ExecError> {
    let rows_in = batches_rows(in_batches);
    let bytes_in = batches_bytes(in_batches);
    let parts = ctx.cfg.spill_partitions.max(1);
    let t0 = Instant::now();
    let mut writers: Vec<SpillWriter> = (0..parts)
        .map(|_| SpillWriter::create())
        .collect::<Result<_, _>>()?;
    let mut seq = 0u64;
    for b in in_batches {
        for i in 0..b.len {
            let key: Vec<Value> = key_cols.iter().map(|&k| b.value_at(k, i)).collect();
            writers[partition_of(&key, parts)].push(seq, &b.row(i))?;
            seq += 1;
        }
    }
    let files: Vec<SpillFile> = writers
        .into_iter()
        .map(SpillWriter::finish)
        .collect::<Result<_, _>>()?;
    for f in &files {
        stats.spill_files += 1;
        stats.spill_rows += f.rows;
        stats.spill_bytes += f.bytes;
    }
    // (first-seen seq, key row, states)
    let mut finished: Vec<(u64, Vec<Value>, Vec<AggState>)> = Vec::new();
    for f in &files {
        let mut map: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut local: Vec<(u64, Vec<Value>, Vec<AggState>)> = Vec::new();
        for (seq, row) in f.read_all()? {
            let key: Vec<Value> = key_cols.iter().map(|&k| row[k].clone()).collect();
            let slot = *map.entry(key.clone()).or_insert_with(|| {
                local.push((
                    seq,
                    key,
                    aggs.iter().map(|&(f, _)| AggState::new(f)).collect(),
                ));
                local.len() - 1
            });
            for (j, &(_, arg)) in aggs.iter().enumerate() {
                let v = arg.map(|a| row[a].clone());
                local[slot].2[j].fold(v.as_ref())?;
            }
        }
        finished.extend(local);
    }
    finished.sort_unstable_by_key(|(s, _, _)| *s);
    let mut out_rows: Table = finished
        .into_iter()
        .map(|(_, mut key, st)| {
            key.extend(st.into_iter().map(AggState::finish));
            key
        })
        .collect();
    if key_cols.is_empty() && out_rows.is_empty() {
        out_rows.push(
            aggs.iter()
                .map(|&(f, _)| AggState::new(f).finish())
                .collect(),
        );
    }
    let out = rows_to_batches(&out_rows, width, ctx.cfg.batch_rows);
    timing(
        stats,
        "HashAggregate",
        rows_in,
        out_rows.len(),
        bytes_in,
        t0,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use qt_catalog::RelId;
    use std::collections::BTreeMap;

    struct Mem(BTreeMap<PartId, Table>);

    impl RowSource for Mem {
        fn rows_of(&self, part: PartId) -> Option<&[Row]> {
            self.0.get(&part).map(|t| t.as_slice())
        }
    }

    fn store(n: i64) -> Mem {
        let r: Table = (0..n)
            .map(|i| {
                vec![
                    Value::Int(i % 17),
                    Value::Int(i),
                    Value::Float(i as f64 * 0.5),
                ]
            })
            .collect();
        let s: Table = (0..n / 2)
            .map(|i| vec![Value::Int(i % 23), Value::str(format!("s{}", i % 5))])
            .collect();
        Mem(
            [(PartId::new(RelId(0), 0), r), (PartId::new(RelId(1), 0), s)]
                .into_iter()
                .collect(),
        )
    }

    fn scan(rel: u32, arity: usize) -> PhysPlan {
        PhysPlan::Scan {
            part: PartId::new(RelId(rel), 0),
            arity,
        }
    }

    fn demo_plan() -> PhysPlan {
        PhysPlan::HashAggregate {
            input: Box::new(PhysPlan::HashJoin {
                left: Box::new(PhysPlan::Filter {
                    input: Box::new(scan(0, 3)),
                    predicates: vec![Predicate::with_const(
                        Col::new(RelId(0), 1),
                        CompOp::Ge,
                        10i64,
                    )],
                }),
                right: Box::new(scan(1, 2)),
                left_keys: vec![Col::new(RelId(0), 0)],
                right_keys: vec![Col::new(RelId(1), 0)],
            }),
            group_by: vec![Col::new(RelId(1), 1)],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(Col::new(RelId(0), 1)),
                },
                AggSpec {
                    func: AggFunc::Count,
                    arg: None,
                },
                AggSpec {
                    func: AggFunc::Min,
                    arg: Some(Col::new(RelId(0), 2)),
                },
            ],
        }
    }

    fn assert_oracle_match(plan: &PhysPlan, src: &Mem, cfg: &ColumnarConfig) -> ColExecStats {
        let oracle = execute(plan, src, &[]).unwrap();
        let (got, stats) = execute_columnar_with_stats(plan, src, &[], cfg).unwrap();
        assert_eq!(got, oracle);
        stats
    }

    #[test]
    fn matches_row_executor_across_batch_sizes() {
        let src = store(500);
        let plan = demo_plan();
        for batch_rows in [1, 7, 1024] {
            let cfg = ColumnarConfig {
                batch_rows,
                ..Default::default()
            };
            let stats = assert_oracle_match(&plan, &src, &cfg);
            assert_eq!(stats.spill_rows, 0);
            assert!(stats.timings.iter().any(|t| t.op == "HashAggregate"));
        }
    }

    #[test]
    fn tiny_budget_spills_and_stays_bit_identical() {
        let src = store(400);
        let plan = demo_plan();
        let cfg = ColumnarConfig {
            batch_rows: 64,
            mem_budget_bytes: 256,
            spill_partitions: 4,
        };
        let stats = assert_oracle_match(&plan, &src, &cfg);
        assert!(stats.spill_files > 0);
        assert!(stats.spill_rows > 0);
        assert!(stats.spill_bytes > 0);
    }

    #[test]
    fn nl_join_equi_lowering_matches_pair_loop_order() {
        let src = store(120);
        let plan = PhysPlan::NlJoin {
            left: Box::new(scan(0, 3)),
            right: Box::new(scan(1, 2)),
            predicates: vec![
                Predicate::eq_cols(Col::new(RelId(0), 0), Col::new(RelId(1), 0)),
                Predicate::with_const(Col::new(RelId(0), 1), CompOp::Lt, 100i64),
            ],
        };
        assert_oracle_match(&plan, &src, &ColumnarConfig::default());
        // And with a budget that forces the equi-lowered join to spill.
        assert_oracle_match(
            &plan,
            &src,
            &ColumnarConfig {
                mem_budget_bytes: 128,
                ..Default::default()
            },
        );
    }

    #[test]
    fn non_equi_nl_union_sort_project_match() {
        let src = store(60);
        let plan = PhysPlan::Sort {
            input: Box::new(PhysPlan::Project {
                input: Box::new(PhysPlan::NlJoin {
                    left: Box::new(PhysPlan::Union {
                        inputs: vec![scan(0, 3), scan(0, 3)],
                    }),
                    right: Box::new(scan(1, 2)),
                    predicates: vec![Predicate {
                        left: Col::new(RelId(0), 0),
                        op: CompOp::Lt,
                        right: Operand::Col(Col::new(RelId(1), 0)),
                    }],
                }),
                cols: vec![Col::new(RelId(1), 1), Col::new(RelId(0), 1)],
            }),
            keys: vec![Col::new(RelId(0), 1)],
        };
        assert_oracle_match(&plan, &src, &ColumnarConfig::default());
    }

    #[test]
    fn merge_join_and_input_slots_match() {
        let src = store(80);
        let sorted = |rel: u32, arity: usize, key: Col| PhysPlan::Sort {
            input: Box::new(scan(rel, arity)),
            keys: vec![key],
        };
        let plan = PhysPlan::MergeJoin {
            left: Box::new(sorted(0, 3, Col::new(RelId(0), 0))),
            right: Box::new(sorted(1, 2, Col::new(RelId(1), 0))),
            left_keys: vec![Col::new(RelId(0), 0)],
            right_keys: vec![Col::new(RelId(1), 0)],
        };
        assert_oracle_match(&plan, &src, &ColumnarConfig::default());

        let table = vec![
            vec![Value::Int(3), Value::Null],
            vec![Value::str("x"), Value::Float(1.5)],
        ];
        let p = PhysPlan::Input {
            slot: 0,
            schema: vec![Col::new(RelId(5), 0), Col::new(RelId(5), 1)],
        };
        let oracle = execute(&p, &src, std::slice::from_ref(&table)).unwrap();
        let got = execute_columnar(
            &p,
            &src,
            std::slice::from_ref(&table),
            &ColumnarConfig::default(),
        )
        .unwrap();
        assert_eq!(got, oracle);
    }

    #[test]
    fn errors_match_row_executor() {
        let src = store(10);
        let missing = PhysPlan::Scan {
            part: PartId::new(RelId(9), 0),
            arity: 1,
        };
        assert_eq!(
            execute_columnar(&missing, &src, &[], &ColumnarConfig::default()),
            Err(ExecError::MissingPartition(PartId::new(RelId(9), 0)))
        );
        let bad_col = PhysPlan::Project {
            input: Box::new(scan(0, 3)),
            cols: vec![Col::new(RelId(7), 0)],
        };
        assert!(matches!(
            execute_columnar(&bad_col, &src, &[], &ColumnarConfig::default()),
            Err(ExecError::UnresolvedColumn(_))
        ));
    }

    #[test]
    fn null_and_mixed_columns_roundtrip() {
        let rows: Table = vec![
            vec![Value::Int(1), Value::Null, Value::str("a")],
            vec![Value::Null, Value::Float(2.5), Value::str("b")],
            vec![Value::Int(3), Value::Int(7), Value::str("a")],
        ];
        let b = ColBatch::from_rows(&rows, 3);
        assert!(matches!(b.cols[1], Column::Mixed(_)));
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&b.row(i), r);
        }
        let taken = b.gather(&[2, 0]);
        assert_eq!(taken.row(0), rows[2]);
        assert_eq!(taken.row(1), rows[0]);
    }

    #[test]
    fn str_columns_are_dictionary_coded() {
        let rows: Table = (0..100)
            .map(|i| vec![Value::str(format!("tag{}", i % 3))])
            .collect();
        let b = ColBatch::from_rows(&rows, 1);
        match &b.cols[0] {
            Column::Str { dict, codes, .. } => {
                assert_eq!(dict.len(), 3);
                assert_eq!(codes.len(), 100);
            }
            other => panic!("expected dict-coded strings, got {other:?}"),
        }
    }
}
