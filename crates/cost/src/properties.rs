//! Query-answer properties and their valuation.

use std::fmt;
use std::ops::Add;

/// The multi-dimensional properties of a (promised) query answer — the
/// content of an offer in the trading negotiation (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerProperties {
    /// Total time to execute the query and transmit the result to the buyer,
    /// in (simulated) seconds.
    pub total_time: f64,
    /// Time until the first result row reaches the buyer, in seconds.
    pub first_row_time: f64,
    /// Average result delivery rate, rows per second.
    pub rows_per_sec: f64,
    /// Estimated number of result rows.
    pub rows: f64,
    /// Estimated result size in bytes.
    pub bytes: f64,
    /// Freshness of the promised data in `[0, 1]` (1 = live data).
    pub freshness: f64,
    /// Completeness of the promised data in `[0, 1]` (1 = all requested
    /// rows; `< 1` for partial extents when the seller says so).
    pub completeness: f64,
    /// Monetary charge in abstract currency units (0 in cooperative
    /// federations).
    pub price: f64,
}

impl AnswerProperties {
    /// Properties of an instantly-available, free, perfect answer of `rows`
    /// rows / `bytes` bytes. Useful as a starting point for builders.
    pub fn instant(rows: f64, bytes: f64) -> Self {
        AnswerProperties {
            total_time: 0.0,
            first_row_time: 0.0,
            rows_per_sec: f64::INFINITY,
            rows,
            bytes,
            freshness: 1.0,
            completeness: 1.0,
            price: 0.0,
        }
    }

    /// Properties with a given total time, deriving the delivery rate.
    pub fn timed(total_time: f64, rows: f64, bytes: f64) -> Self {
        AnswerProperties {
            total_time,
            first_row_time: total_time.min(total_time * 0.1 + 0.001),
            rows_per_sec: if total_time > 0.0 {
                rows / total_time
            } else {
                f64::INFINITY
            },
            rows,
            bytes,
            freshness: 1.0,
            completeness: 1.0,
            price: 0.0,
        }
    }

    /// Add `extra` seconds of (local or transfer) work to the promise.
    pub fn delayed_by(mut self, extra: f64) -> Self {
        self.total_time += extra;
        self.first_row_time += extra;
        if self.total_time > 0.0 {
            self.rows_per_sec = self.rows / self.total_time;
        }
        self
    }

    /// With a monetary charge attached.
    pub fn priced(mut self, price: f64) -> Self {
        self.price = price;
        self
    }
}

/// Parallel composition: two answers produced concurrently (the buyer
/// purchases both; delivery times overlap, sizes add, quality multiplies).
impl Add for AnswerProperties {
    type Output = AnswerProperties;

    fn add(self, other: AnswerProperties) -> AnswerProperties {
        let total_time = self.total_time.max(other.total_time);
        let rows = self.rows + other.rows;
        AnswerProperties {
            total_time,
            first_row_time: self.first_row_time.min(other.first_row_time),
            rows_per_sec: if total_time > 0.0 {
                rows / total_time
            } else {
                f64::INFINITY
            },
            rows,
            bytes: self.bytes + other.bytes,
            freshness: self.freshness.min(other.freshness),
            completeness: self.completeness * other.completeness,
            price: self.price + other.price,
        }
    }
}

impl fmt::Display for AnswerProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3}s ({:.0} rows, {:.0} B, first {:.3}s, fresh {:.2}, complete {:.2}, price {:.2})",
            self.total_time,
            self.rows,
            self.bytes,
            self.first_row_time,
            self.freshness,
            self.completeness,
            self.price
        )
    }
}

/// The administrator-defined weighting aggregation function the buyer uses to
/// rank offers (§3.1): a linear combination of the answer-property
/// dimensions, lower is better.
#[derive(Debug, Clone, PartialEq)]
pub struct Valuation {
    /// Weight of `total_time` (seconds).
    pub w_total_time: f64,
    /// Weight of `first_row_time` (seconds).
    pub w_first_row: f64,
    /// Weight of `price` (currency units).
    pub w_price: f64,
    /// Weight of *staleness* = `1 - freshness`.
    pub w_staleness: f64,
    /// Weight of *incompleteness* = `1 - completeness`.
    pub w_incompleteness: f64,
}

impl Valuation {
    /// The paper's default running valuation: total response time only.
    pub fn response_time() -> Self {
        Valuation {
            w_total_time: 1.0,
            w_first_row: 0.0,
            w_price: 0.0,
            w_staleness: 0.0,
            w_incompleteness: 0.0,
        }
    }

    /// A monetary marketplace valuation: price dominates, time tie-breaks.
    pub fn monetary() -> Self {
        Valuation {
            w_total_time: 0.01,
            w_first_row: 0.0,
            w_price: 1.0,
            w_staleness: 0.0,
            w_incompleteness: 1_000.0,
        }
    }

    /// Score an answer: the lower the better.
    pub fn score(&self, p: &AnswerProperties) -> f64 {
        self.w_total_time * p.total_time
            + self.w_first_row * p.first_row_time
            + self.w_price * p.price
            + self.w_staleness * (1.0 - p.freshness)
            + self.w_incompleteness * (1.0 - p.completeness)
    }
}

impl Default for Valuation {
    fn default() -> Self {
        Valuation::response_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_derives_rate() {
        let p = AnswerProperties::timed(10.0, 100.0, 800.0);
        assert!((p.rows_per_sec - 10.0).abs() < 1e-9);
        assert!(p.first_row_time <= p.total_time);
    }

    #[test]
    fn delayed_by_shifts_times() {
        let p = AnswerProperties::timed(10.0, 100.0, 800.0).delayed_by(5.0);
        assert!((p.total_time - 15.0).abs() < 1e-9);
        assert!((p.rows_per_sec - 100.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_composition_takes_max_time() {
        let a = AnswerProperties::timed(10.0, 100.0, 800.0);
        let b = AnswerProperties::timed(30.0, 50.0, 400.0).priced(2.0);
        let c = a + b;
        assert!((c.total_time - 30.0).abs() < 1e-9);
        assert!((c.rows - 150.0).abs() < 1e-9);
        assert!((c.bytes - 1200.0).abs() < 1e-9);
        assert!((c.price - 2.0).abs() < 1e-9);
    }

    #[test]
    fn completeness_multiplies() {
        let mut a = AnswerProperties::instant(1.0, 1.0);
        a.completeness = 0.5;
        let mut b = AnswerProperties::instant(1.0, 1.0);
        b.completeness = 0.5;
        assert!(((a + b).completeness - 0.25).abs() < 1e-9);
    }

    #[test]
    fn response_time_valuation_ranks_by_time() {
        let v = Valuation::response_time();
        let fast = AnswerProperties::timed(1.0, 10.0, 80.0).priced(100.0);
        let slow = AnswerProperties::timed(2.0, 10.0, 80.0);
        assert!(v.score(&fast) < v.score(&slow));
    }

    #[test]
    fn monetary_valuation_ranks_by_price() {
        let v = Valuation::monetary();
        let cheap_slow = AnswerProperties::timed(100.0, 10.0, 80.0).priced(1.0);
        let pricey_fast = AnswerProperties::timed(1.0, 10.0, 80.0).priced(50.0);
        assert!(v.score(&cheap_slow) < v.score(&pricey_fast));
    }

    #[test]
    fn incompleteness_penalized() {
        let v = Valuation::monetary();
        let mut partial = AnswerProperties::timed(1.0, 10.0, 80.0);
        partial.completeness = 0.5;
        let full = AnswerProperties::timed(1.0, 10.0, 80.0).priced(10.0);
        assert!(v.score(&full) < v.score(&partial));
    }

    #[test]
    fn display_is_compact() {
        let s = AnswerProperties::timed(1.5, 10.0, 80.0).to_string();
        assert!(s.contains("1.500s"));
        assert!(s.contains("10 rows"));
    }
}
