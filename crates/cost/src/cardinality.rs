//! Statistics-based cardinality and width estimation for query fragments.
//!
//! Both the seller-local optimizers and the buyer plan generator estimate
//! result sizes with the same System-R-style model: per-relation profiles
//! from partition statistics, independence across predicates, and
//! `1/max(ndv)` equi-join selectivity.

use qt_catalog::{ColumnStats, PartId, PartitionStats, RelId, SchemaDict, Value};
use qt_query::{CompOp, Operand, PartSet, Predicate, Query, SelectItem};
use std::collections::BTreeMap;

/// Where the estimator reads partition statistics from. Implemented by the
/// global [`qt_catalog::Catalog`] (baselines) and by [`qt_catalog::NodeHoldings`]
/// (autonomous nodes — which only see their own partitions).
pub trait StatsSource {
    /// The shared data dictionary.
    fn dict(&self) -> &SchemaDict;
    /// Statistics for `part`, if this source knows them.
    fn part_stats(&self, part: PartId) -> Option<&PartitionStats>;
}

impl StatsSource for qt_catalog::Catalog {
    fn dict(&self) -> &SchemaDict {
        &self.dict
    }
    fn part_stats(&self, part: PartId) -> Option<&PartitionStats> {
        self.stats.get(&part)
    }
}

impl StatsSource for qt_catalog::NodeHoldings {
    fn dict(&self) -> &SchemaDict {
        &self.dict
    }
    fn part_stats(&self, part: PartId) -> Option<&PartitionStats> {
        self.stats(part)
    }
}

/// Per-relation profile after applying the query's selection predicates.
#[derive(Debug, Clone)]
pub struct RelProfile {
    /// Estimated surviving rows.
    pub rows: f64,
    /// Column statistics (NDVs capped at `rows`).
    pub cols: Vec<ColumnStats>,
    /// Average row width of the *full* base tuple in bytes.
    pub width: f64,
}

/// Result of estimating a whole query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output row width in bytes.
    pub width: f64,
}

impl CardEstimate {
    /// Estimated output size in bytes.
    pub fn bytes(&self) -> f64 {
        self.rows * self.width
    }
}

/// The estimator. `default_part_rows` is the guess used for partitions whose
/// statistics the source does not know (a buyer valuating a query about data
/// it has never seen — the paper's "predefined constant" initial estimate).
#[derive(Debug, Clone)]
pub struct CardinalityEstimator<'a, S: StatsSource> {
    source: &'a S,
    /// Fallback row count per unknown partition.
    pub default_part_rows: u64,
}

impl<'a, S: StatsSource> CardinalityEstimator<'a, S> {
    /// New estimator over `source`.
    pub fn new(source: &'a S) -> Self {
        CardinalityEstimator {
            source,
            default_part_rows: 10_000,
        }
    }

    /// Statistics of one partition, synthesizing the default profile for
    /// partitions this source does not know (the paper's "predefined
    /// constant" initial estimate).
    pub fn part_stats_of(&self, pid: PartId, arity: usize) -> PartitionStats {
        match self.source.part_stats(pid) {
            Some(s) => s.clone(),
            None => PartitionStats::synthetic(
                self.default_part_rows,
                &vec![self.default_part_rows; arity],
            ),
        }
    }

    /// Merged statistics of the `parts` subset of `rel`, falling back to a
    /// synthetic default for unknown partitions.
    pub fn base_profile(&self, rel: RelId, parts: &PartSet) -> RelProfile {
        let dict = self.source.dict();
        let arity = dict.rel(rel).schema.arity();
        let mut acc: Option<PartitionStats> = None;
        for idx in parts.iter() {
            let stats = self.part_stats_of(PartId::new(rel, idx), arity);
            acc = Some(match acc {
                None => stats,
                Some(a) => a.merge(&stats),
            });
        }
        let stats = acc.unwrap_or_else(|| PartitionStats::empty(arity));
        RelProfile {
            rows: stats.rows as f64,
            width: stats.row_width() as f64,
            cols: stats.cols,
        }
    }

    fn const_selectivity(cols: &[ColumnStats], attr: usize, op: CompOp, v: &Value) -> f64 {
        let c = &cols[attr];
        match op {
            CompOp::Eq => c.eq_selectivity(v),
            CompOp::Ne => (1.0 - c.eq_selectivity(v)).max(0.0),
            CompOp::Lt | CompOp::Le => c.range_selectivity(None, Some(v)),
            CompOp::Gt | CompOp::Ge => c.range_selectivity(Some(v), None),
        }
    }

    /// Profile of `rel` within `query` after its selection predicates.
    pub fn selected_profile(&self, query: &Query, rel: RelId) -> RelProfile {
        let parts = query.relations.get(&rel).copied().unwrap_or(PartSet::EMPTY);
        let mut profile = self.base_profile(rel, &parts);
        let mut sel = 1.0f64;
        for p in query.selections_of(rel) {
            sel *= match &p.right {
                Operand::Const(v) => Self::const_selectivity(&profile.cols, p.left.attr, p.op, v),
                Operand::Col(c) => {
                    // Same-relation column comparison.
                    let ndv = profile.cols[p.left.attr]
                        .ndv
                        .max(profile.cols[c.attr].ndv)
                        .max(1) as f64;
                    if p.op == CompOp::Eq {
                        1.0 / ndv
                    } else {
                        1.0 / 3.0
                    }
                }
            };
        }
        profile.rows *= sel.clamp(0.0, 1.0);
        for c in &mut profile.cols {
            c.ndv = c.ndv.min(profile.rows.ceil() as u64);
        }
        profile
    }

    /// Selectivity of a join predicate given the per-relation profiles.
    fn join_selectivity(profiles: &BTreeMap<RelId, RelProfile>, p: &Predicate) -> f64 {
        let Operand::Col(rc) = &p.right else {
            return 1.0;
        };
        let l_ndv = profiles
            .get(&p.left.rel)
            .map(|pr| pr.cols[p.left.attr].ndv)
            .unwrap_or(1);
        let r_ndv = profiles
            .get(&rc.rel)
            .map(|pr| pr.cols[rc.attr].ndv)
            .unwrap_or(1);
        join_selectivity_from_ndv(l_ndv, r_ndv, p.op)
    }

    /// Estimated row count of the join over `rels ⊆ query.relations`,
    /// applying every selection on those relations and every join predicate
    /// fully contained in the subset. This is the incremental estimate the
    /// DP enumerators call per subset.
    pub fn join_rows(&self, query: &Query, rels: &[RelId]) -> f64 {
        let profiles: BTreeMap<RelId, RelProfile> = rels
            .iter()
            .map(|&r| (r, self.selected_profile(query, r)))
            .collect();
        let mut rows: f64 = profiles.values().map(|p| p.rows).product();
        for p in query.join_predicates() {
            if p.rels().iter().all(|r| profiles.contains_key(r)) {
                rows *= Self::join_selectivity(&profiles, p);
            }
        }
        rows
    }

    /// Output width of `query`'s select list given per-relation profiles.
    fn output_width(&self, query: &Query) -> f64 {
        query
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Col(c) => {
                    let profile = self.selected_profile(query, c.rel);
                    profile.cols[c.attr].avg_width as f64
                }
                SelectItem::Agg { .. } => 8.0,
            })
            .sum::<f64>()
            .max(1.0)
    }

    /// Estimate the output cardinality and row width of the whole query.
    pub fn estimate(&self, query: &Query) -> CardEstimate {
        let rels: Vec<RelId> = query.rel_ids().collect();
        let mut rows = self.join_rows(query, &rels);
        if query.is_aggregate() {
            if query.group_by.is_empty() {
                rows = 1.0;
            } else {
                let groups: f64 = query
                    .group_by
                    .iter()
                    .map(|c| self.selected_profile(query, c.rel).cols[c.attr].ndv.max(1) as f64)
                    .product();
                rows = rows.min(groups).max(if rows > 0.0 { 1.0 } else { 0.0 });
            }
        }
        CardEstimate {
            rows,
            width: self.output_width(query),
        }
    }
}

/// The `1/max(ndv)` equi-join selectivity formula, shared by the plain
/// estimator and the subset memo (`crate::memo`) so both produce
/// bit-identical estimates.
pub(crate) fn join_selectivity_from_ndv(l_ndv: u64, r_ndv: u64, op: CompOp) -> f64 {
    let l = l_ndv.max(1) as f64;
    let r = r_ndv.max(1) as f64;
    match op {
        CompOp::Eq => 1.0 / l.max(r),
        CompOp::Ne => 1.0 - 1.0 / l.max(r),
        _ => 1.0 / 3.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, NodeId, PartitionStats, Partitioning, RelationSchema,
    };
    use qt_query::{Col, Query, SelectItem};

    /// r(a,b) 10k rows a:ndv 10k b:ndv 100; s(a,c) 1k rows a:ndv 1k c:ndv 10.
    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int), ("b", AttrType::Int)]),
            Partitioning::Hash { attr: 0, parts: 2 },
        );
        let s = b.add_relation(
            RelationSchema::new("s", vec![("a", AttrType::Int), ("c", AttrType::Int)]),
            Partitioning::Single,
        );
        for i in 0..2 {
            b.set_stats(
                PartId::new(r, i),
                PartitionStats::synthetic(5_000, &[5_000, 100]),
            );
            b.place(PartId::new(r, i), NodeId(0));
        }
        b.set_stats(
            PartId::new(s, 0),
            PartitionStats::synthetic(1_000, &[1_000, 10]),
        );
        b.place(PartId::new(s, 0), NodeId(0));
        b.build()
    }

    fn rid() -> RelId {
        RelId(0)
    }
    fn sid() -> RelId {
        RelId(1)
    }

    #[test]
    fn base_profile_merges_partitions() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c);
        let p = e.base_profile(rid(), &PartSet::all(2));
        assert!((p.rows - 10_000.0).abs() < 1.0);
        let p1 = e.base_profile(rid(), &PartSet::single(0));
        assert!((p1.rows - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn unknown_partitions_fall_back_to_default() {
        let c = catalog();
        let holdings = c.holdings_of(NodeId(99)); // holds nothing
        let e = CardinalityEstimator::new(&holdings);
        let p = e.base_profile(rid(), &PartSet::all(2));
        assert!((p.rows - 2.0 * e.default_part_rows as f64).abs() < 1.0);
    }

    #[test]
    fn equality_selection_uses_ndv() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c);
        let q = Query::over_full(&c.dict, [rid()])
            .with_predicates(vec![Predicate::with_const(
                Col::new(rid(), 1),
                CompOp::Eq,
                5i64,
            )])
            .with_select(vec![SelectItem::Col(Col::new(rid(), 0))]);
        let est = e.estimate(&q);
        // 10k rows, b has ndv 100 → ~100 rows.
        assert!(est.rows > 50.0 && est.rows < 200.0, "{}", est.rows);
    }

    #[test]
    fn equijoin_uses_max_ndv() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c);
        let q = Query::over_full(&c.dict, [rid(), sid()])
            .with_predicates(vec![Predicate::eq_cols(
                Col::new(rid(), 0),
                Col::new(sid(), 0),
            )])
            .with_select(vec![SelectItem::Col(Col::new(rid(), 1))]);
        let est = e.estimate(&q);
        // 10k × 1k / max(ndv(r.a), ndv(s.a)); merged ndv(r.a) is a
        // conservative 5k–10k, so expect 1k–2k.
        assert!(est.rows >= 500.0 && est.rows <= 2_500.0, "{}", est.rows);
    }

    #[test]
    fn cross_product_without_predicates() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c);
        let q = Query::over_full(&c.dict, [rid(), sid()])
            .with_select(vec![SelectItem::Col(Col::new(rid(), 1))]);
        assert!((e.estimate(&q).rows - 1e7).abs() < 1e4);
    }

    #[test]
    fn aggregation_caps_at_group_count() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c);
        let q = Query::over_full(&c.dict, [rid()])
            .with_select(vec![
                SelectItem::Col(Col::new(rid(), 1)),
                SelectItem::Agg {
                    func: qt_query::AggFunc::Count,
                    arg: None,
                },
            ])
            .with_group_by(vec![Col::new(rid(), 1)]);
        let est = e.estimate(&q);
        assert!(est.rows <= 100.0 + 1e-9, "{}", est.rows);
        // Scalar aggregate → exactly one row.
        let scalar = Query::over_full(&c.dict, [rid()]).with_select(vec![SelectItem::Agg {
            func: qt_query::AggFunc::Count,
            arg: None,
        }]);
        assert_eq!(e.estimate(&scalar).rows, 1.0);
    }

    #[test]
    fn join_rows_is_monotone_in_subset_growth_for_cross_products() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c);
        let q = Query::over_full(&c.dict, [rid(), sid()])
            .with_select(vec![SelectItem::Col(Col::new(rid(), 1))]);
        let r_only = e.join_rows(&q, &[rid()]);
        let both = e.join_rows(&q, &[rid(), sid()]);
        assert!(both > r_only);
    }

    #[test]
    fn width_counts_select_items() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c);
        let q = Query::over_full(&c.dict, [rid()]).with_select(vec![
            SelectItem::Col(Col::new(rid(), 0)),
            SelectItem::Col(Col::new(rid(), 1)),
        ]);
        assert!((e.estimate(&q).width - 16.0).abs() < 1e-9);
    }

    #[test]
    fn range_selection_scales_rows() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c);
        // b uniform over [0, 99]; b < 50 → about half.
        let q = Query::over_full(&c.dict, [rid()])
            .with_predicates(vec![Predicate::with_const(
                Col::new(rid(), 1),
                CompOp::Lt,
                50i64,
            )])
            .with_select(vec![SelectItem::Col(Col::new(rid(), 0))]);
        let est = e.estimate(&q);
        assert!(est.rows > 3_000.0 && est.rows < 7_000.0, "{}", est.rows);
    }
}
