//! Network link cost model.

/// A (directed) network path between two nodes: fixed latency plus
/// bandwidth-limited transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetLink {
    /// One-way latency in seconds.
    pub latency: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl NetLink {
    /// A LAN-ish default: 1 ms latency, 10 MB/s.
    pub fn lan() -> Self {
        NetLink {
            latency: 0.001,
            bandwidth: 10e6,
        }
    }

    /// A WAN-ish default: 25 ms latency, 1 MB/s — the regime of the paper's
    /// geographically distributed regional offices.
    pub fn wan() -> Self {
        NetLink {
            latency: 0.025,
            bandwidth: 1e6,
        }
    }

    /// Time to deliver a message/result of `bytes` bytes.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes.max(0.0) / self.bandwidth
    }

    /// Time until the *first* byte of a streamed result arrives.
    pub fn first_byte_time(&self) -> f64 {
        self.latency
    }
}

impl Default for NetLink {
    fn default() -> Self {
        NetLink::wan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = NetLink {
            latency: 0.01,
            bandwidth: 1000.0,
        };
        assert!((l.transfer_time(0.0) - 0.01).abs() < 1e-12);
        assert!((l.transfer_time(2000.0) - 2.01).abs() < 1e-12);
    }

    #[test]
    fn negative_bytes_clamp() {
        let l = NetLink::lan();
        assert!((l.transfer_time(-5.0) - l.latency).abs() < 1e-12);
    }

    #[test]
    fn wan_slower_than_lan() {
        assert!(NetLink::wan().transfer_time(1e6) > NetLink::lan().transfer_time(1e6));
    }
}
