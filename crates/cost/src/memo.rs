//! Subset-keyed cardinality memoization for DP enumeration.
//!
//! The DP enumerators ask for the output cardinality of every relation
//! subset they consider — and they consider each subset once per way of
//! splitting it, once per Pareto-entry pairing. [`CardinalityEstimator`]
//! recomputes the per-relation selected profiles and re-applies the join
//! selectivities on every call; for an `n`-relation query that multiplies
//! the estimation work by the number of candidate pairs.
//!
//! [`SubsetCardMemo`] computes each selected profile **once** per
//! enumeration and memoizes `join_rows` per relation-subset bitmask, so all
//! physical candidates for a subset (and `partial_results`, which needs the
//! same subsets again for offer widths) share one estimate. Every value it
//! returns is bit-identical to what the plain estimator would have produced:
//! same inputs, same floating-point operations, same order.
//!
//! Bitmask convention (shared with the enumerators): bit `i` of a mask is
//! the `i`-th relation of the query in ascending [`RelId`] order.

use crate::cardinality::{
    join_selectivity_from_ndv, CardinalityEstimator, RelProfile, StatsSource,
};
use qt_catalog::RelId;
use qt_query::{Operand, Predicate, Query, SelectItem};
use std::collections::HashMap;

/// Per-enumeration cardinality memo over one query's relation subsets.
pub struct SubsetCardMemo<'q, 'a, S: StatsSource> {
    est: CardinalityEstimator<'a, S>,
    query: &'q Query,
    /// The query's relations, ascending (bit `i` of a mask ↔ `rels[i]`).
    rels: Vec<RelId>,
    /// Selected profile per relation, aligned with `rels`.
    profiles: Vec<RelProfile>,
    /// Join predicates (in query order) with the bitmask of their relations;
    /// a predicate applies to a subset iff its mask is contained in it.
    join_preds: Vec<(&'q Predicate, u64)>,
    rows: HashMap<u64, f64>,
}

impl<'q, 'a, S: StatsSource> SubsetCardMemo<'q, 'a, S> {
    /// Build the memo for `query`: computes every relation's selected
    /// profile once up front.
    pub fn new(est: CardinalityEstimator<'a, S>, query: &'q Query) -> Self {
        let rels: Vec<RelId> = query.rel_ids().collect();
        let profiles: Vec<RelProfile> = rels
            .iter()
            .map(|&r| est.selected_profile(query, r))
            .collect();
        let mask_of = |r: RelId| -> u64 {
            match rels.binary_search(&r) {
                Ok(i) => 1u64 << i,
                // A relation outside the query: never contained in any mask.
                Err(_) => u64::MAX,
            }
        };
        let join_preds: Vec<(&Predicate, u64)> = query
            .join_predicates()
            .map(|p| (p, p.rels().iter().fold(0u64, |m, &r| m | mask_of(r))))
            .collect();
        SubsetCardMemo {
            est,
            query,
            rels,
            profiles,
            join_preds,
            rows: HashMap::new(),
        }
    }

    /// The query this memo was built for.
    pub fn query(&self) -> &'q Query {
        self.query
    }

    /// The query's relations in mask-bit order.
    pub fn rels(&self) -> &[RelId] {
        &self.rels
    }

    /// The underlying estimator (for boundary estimates the memo does not
    /// cover, e.g. the full query's aggregate output).
    pub fn estimator(&self) -> &CardinalityEstimator<'a, S> {
        &self.est
    }

    /// The memoized selected profile of `rel` (must be a query relation).
    pub fn profile(&self, rel: RelId) -> &RelProfile {
        let i = self
            .rels
            .binary_search(&rel)
            .expect("relation of the query");
        &self.profiles[i]
    }

    /// Estimated row count of the join over the subset `mask`, computed once
    /// per mask and shared by every candidate considered for it. Matches
    /// [`CardinalityEstimator::join_rows`] bit-for-bit.
    pub fn join_rows(&mut self, mask: u64) -> f64 {
        if let Some(&rows) = self.rows.get(&mask) {
            return rows;
        }
        let mut rows: f64 = (0..self.rels.len())
            .filter(|i| mask >> i & 1 == 1)
            .map(|i| self.profiles[i].rows)
            .product();
        for &(p, pmask) in &self.join_preds {
            if pmask & mask == pmask {
                rows *= self.join_selectivity(p);
            }
        }
        self.rows.insert(mask, rows);
        rows
    }

    fn join_selectivity(&self, p: &Predicate) -> f64 {
        let Operand::Col(rc) = &p.right else {
            return 1.0;
        };
        let ndv_of = |rel: RelId, attr: usize| -> u64 {
            match self.rels.binary_search(&rel) {
                Ok(i) => self.profiles[i].cols[attr].ndv,
                Err(_) => 1,
            }
        };
        join_selectivity_from_ndv(
            ndv_of(p.left.rel, p.left.attr),
            ndv_of(rc.rel, rc.attr),
            p.op,
        )
    }

    /// Output row width of a sub-query over a subset of this memo's
    /// relations, from the memoized profiles (the sub-query must carry the
    /// parent query's partition sets and selections, as
    /// [`Query::restrict_to_rels`] guarantees).
    pub fn subset_width(&self, sub_query: &Query) -> f64 {
        sub_query
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Col(c) => self.profile(c.rel).cols[c.attr].avg_width as f64,
                SelectItem::Agg { .. } => 8.0,
            })
            .sum::<f64>()
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning,
        RelationSchema,
    };
    use qt_query::{Col, CompOp, SelectItem};

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        for (name, rows, ndvs) in [
            ("r", 10_000u64, [5_000u64, 100]),
            ("s", 1_000, [1_000, 10]),
            ("t", 500, [250, 5]),
        ] {
            let rel = b.add_relation(
                RelationSchema::new(name, vec![("a", AttrType::Int), ("b", AttrType::Int)]),
                Partitioning::Single,
            );
            b.set_stats(PartId::new(rel, 0), PartitionStats::synthetic(rows, &ndvs));
            b.place(PartId::new(rel, 0), NodeId(0));
        }
        b.build()
    }

    fn chain_query(cat: &Catalog) -> Query {
        let rels: Vec<RelId> = (0..3u32).map(RelId).collect();
        Query::over_full(&cat.dict, rels.iter().copied())
            .with_predicates(vec![
                Predicate::eq_cols(Col::new(rels[0], 0), Col::new(rels[1], 0)),
                Predicate::eq_cols(Col::new(rels[1], 0), Col::new(rels[2], 0)),
                Predicate::with_const(Col::new(rels[0], 1), CompOp::Lt, 50i64),
            ])
            .with_select(vec![
                SelectItem::Col(Col::new(rels[0], 1)),
                SelectItem::Col(Col::new(rels[2], 1)),
            ])
    }

    #[test]
    fn join_rows_matches_plain_estimator_for_every_subset() {
        let cat = catalog();
        let q = chain_query(&cat);
        let plain = CardinalityEstimator::new(&cat);
        let mut memo = SubsetCardMemo::new(CardinalityEstimator::new(&cat), &q);
        let rels: Vec<RelId> = q.rel_ids().collect();
        for mask in 1u64..8 {
            let subset: Vec<RelId> = rels
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &r)| r)
                .collect();
            let want = plain.join_rows(&q, &subset);
            assert_eq!(
                memo.join_rows(mask).to_bits(),
                want.to_bits(),
                "mask {mask:b}: memo {} vs plain {want}",
                memo.join_rows(mask)
            );
            // Second lookup hits the memo and returns the same bits.
            assert_eq!(memo.join_rows(mask).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn subset_width_matches_plain_estimate() {
        let cat = catalog();
        let q = chain_query(&cat);
        let plain = CardinalityEstimator::new(&cat);
        let memo = SubsetCardMemo::new(CardinalityEstimator::new(&cat), &q);
        for mask in 1u64..8u64 {
            let subset: std::collections::BTreeSet<RelId> = q
                .rel_ids()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, r)| r)
                .collect();
            let sub = q.restrict_to_rels(&subset);
            assert_eq!(
                memo.subset_width(&sub).to_bits(),
                plain.estimate(&sub).width.to_bits(),
                "mask {mask:b}"
            );
        }
    }

    #[test]
    fn profiles_match_selected_profile() {
        let cat = catalog();
        let q = chain_query(&cat);
        let plain = CardinalityEstimator::new(&cat);
        let memo = SubsetCardMemo::new(CardinalityEstimator::new(&cat), &q);
        for r in q.rel_ids() {
            let want = plain.selected_profile(&q, r);
            let got = memo.profile(r);
            assert_eq!(got.rows.to_bits(), want.rows.to_bits());
            assert_eq!(got.width.to_bits(), want.width.to_bits());
        }
        assert_eq!(memo.rels().len(), 3);
        assert_eq!(memo.query().num_relations(), 3);
    }
}
