//! Cost-model calibration from measured executions.
//!
//! The columnar executor records per-operator `(rows_in, rows_out, bytes_in,
//! secs)` timings (`qt_exec::trace::OpTiming`). This module closes the loop:
//! [`CalibrationTable::fit`] turns a batch of those observations into fitted
//! per-tuple/per-byte constants, and [`CalibrationTable::apply`] produces a
//! [`CostParams`] whose formulas predict the measured runtimes — the params
//! sellers then cost their offers with, so trading decisions track the real
//! machine instead of the reference-node guesses.
//!
//! The fit is a deterministic ratio-of-sums per parameter (total measured
//! seconds over total work units), which is the least-squares slope through
//! the origin when every observation of an operator kind is given weight
//! proportional to its work. No randomness anywhere: the same observations
//! always fit the same table.

use crate::params::CostParams;

/// One measured operator execution, as recorded by the columnar executor.
/// Field-for-field mirror of `qt_exec::trace::OpTiming` (`qt-cost` sits
/// below `qt-exec` in the crate graph, so the caller converts).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Operator kind: `"Scan"`, `"Filter"`, `"Project"`, `"HashJoinBuild"`,
    /// `"HashJoinProbe"`, `"Sort"`, `"HashAggregate"`, `"Union"`, …
    pub op: String,
    /// Rows consumed.
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Bytes of input read.
    pub bytes_in: u64,
    /// Measured wall-clock seconds.
    pub secs: f64,
}

/// Per-parameter fitted rates. `None` = the observation set had no (or no
/// nonzero-work) samples for that parameter; [`CalibrationTable::apply`]
/// then scales the analytic default by the overall fitted/default CPU ratio
/// so the whole table stays mutually consistent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationTable {
    /// Seconds per byte scanned (from `Scan`).
    pub io_byte: Option<f64>,
    /// Seconds per tuple through Filter/Project/Union.
    pub cpu_tuple: Option<f64>,
    /// Seconds per tuple inserted into a join hash table.
    pub hash_build: Option<f64>,
    /// Seconds per tuple probed (+ emitted) through a join.
    pub hash_probe: Option<f64>,
    /// Seconds per tuple·log2(n) sorted.
    pub sort_tuple_log: Option<f64>,
    /// Seconds per tuple folded into an aggregate.
    pub agg_tuple: Option<f64>,
    /// Observations the fit consumed.
    pub samples: usize,
}

/// Sum `(secs, work)` over observations selected and weighted by `f`, which
/// returns `(work units, seconds already explained by other parameters)`.
/// The explained part is subtracted (clamped at 0) before the ratio.
fn rate(obs: &[Observation], f: impl Fn(&Observation) -> Option<(f64, f64)>) -> Option<f64> {
    let (mut secs, mut work) = (0.0f64, 0.0f64);
    for o in obs {
        if let Some((w, explained)) = f(o) {
            if w > 0.0 && o.secs.is_finite() && o.secs >= 0.0 {
                secs += (o.secs - explained).max(0.0);
                work += w;
            }
        }
    }
    (work > 0.0).then(|| secs / work)
}

impl CalibrationTable {
    /// Fit rates from measured observations. Deterministic: a pure fold over
    /// the observation list, no RNG, no ordering sensitivity (sums commute
    /// up to float rounding; callers pass observations in execution order,
    /// which is itself deterministic for a fixed seed).
    ///
    /// Two-pass: `cpu_tuple` comes from pure per-tuple operators first;
    /// compound operators (Scan = IO + CPU, probe/aggregate = rate + output
    /// CPU) then fit their own rate on the seconds the CPU term does not
    /// already explain, mirroring the [`CostParams`] formulas exactly.
    pub fn fit(obs: &[Observation]) -> CalibrationTable {
        let cpu_tuple = rate(obs, |o| {
            matches!(o.op.as_str(), "Filter" | "Project" | "Union")
                .then_some((o.rows_in as f64, 0.0))
        });
        let cpu = cpu_tuple.unwrap_or(0.0);
        CalibrationTable {
            io_byte: rate(obs, |o| {
                (o.op == "Scan" || o.op == "Input")
                    .then_some((o.bytes_in as f64, o.rows_in as f64 * cpu))
            }),
            cpu_tuple,
            hash_build: rate(obs, |o| {
                (o.op == "HashJoinBuild").then_some((o.rows_in as f64, 0.0))
            }),
            hash_probe: rate(obs, |o| {
                (o.op == "HashJoinProbe").then_some((o.rows_in as f64, o.rows_out as f64 * cpu))
            }),
            sort_tuple_log: rate(obs, |o| {
                (o.op == "Sort" && o.rows_in > 1)
                    .then(|| (o.rows_in as f64 * (o.rows_in as f64).log2(), 0.0))
            }),
            agg_tuple: rate(obs, |o| {
                (o.op == "HashAggregate").then_some((o.rows_in as f64, o.rows_out as f64 * cpu))
            }),
            samples: obs.len(),
        }
    }

    /// Produce calibrated [`CostParams`]: fitted rates where observed,
    /// CPU-ratio-scaled defaults elsewhere, so un-observed operators stay
    /// plausible relative to observed ones.
    pub fn apply(&self, base: &CostParams) -> CostParams {
        let cpu_scale = match self.cpu_tuple {
            Some(c) if base.cpu_tuple > 0.0 => c / base.cpu_tuple,
            _ => 1.0,
        };
        let pick = |fitted: Option<f64>, fallback: f64| fitted.unwrap_or(fallback * cpu_scale);
        CostParams {
            cpu_tuple: pick(self.cpu_tuple, base.cpu_tuple),
            io_byte: pick(self.io_byte, base.io_byte),
            hash_build: pick(self.hash_build, base.hash_build),
            hash_probe: pick(self.hash_probe, base.hash_probe),
            sort_tuple_log: pick(self.sort_tuple_log, base.sort_tuple_log),
            agg_tuple: pick(self.agg_tuple, base.agg_tuple),
            startup: base.startup * cpu_scale,
        }
    }
}

/// Predicted seconds for one observation under `params`, using the same
/// formulas the optimizers cost plans with.
pub fn predict(params: &CostParams, o: &Observation) -> f64 {
    let rows_in = o.rows_in as f64;
    let rows_out = o.rows_out as f64;
    match o.op.as_str() {
        "Scan" | "Input" => o.bytes_in as f64 * params.io_byte + rows_in * params.cpu_tuple,
        "Filter" | "Project" | "Union" => params.filter(rows_in),
        "HashJoinBuild" => rows_in * params.hash_build,
        "HashJoinProbe" => rows_in * params.hash_probe + rows_out * params.cpu_tuple,
        "MergeJoin" => params.merge_join(rows_in, 0.0, rows_out),
        "NlJoin" => rows_in * rows_in * params.cpu_tuple + rows_out * params.cpu_tuple,
        "Sort" => params.sort(rows_in),
        "HashAggregate" => params.aggregate(rows_in, rows_out),
        _ => rows_in * params.cpu_tuple,
    }
}

/// Scale-free relative error of `params` against measured observations:
/// `sqrt(Σ(k·est − meas)² / Σmeas²)` with `k` the least-squares gain fitted
/// over the whole set. The gain forgives a uniform machine-speed offset —
/// what remains is *shape* error, which is what makes an optimizer pick the
/// wrong plan. Returns 0 when there is nothing to compare.
pub fn cost_error(params: &CostParams, obs: &[Observation]) -> f64 {
    let mut est_meas = 0.0f64;
    let mut est_sq = 0.0f64;
    let mut meas_sq = 0.0f64;
    let pairs: Vec<(f64, f64)> = obs
        .iter()
        .filter(|o| o.secs.is_finite() && o.secs >= 0.0)
        .map(|o| (predict(params, o), o.secs))
        .collect();
    for &(e, m) in &pairs {
        est_meas += e * m;
        est_sq += e * e;
        meas_sq += m * m;
    }
    if meas_sq == 0.0 || est_sq == 0.0 {
        return 0.0;
    }
    let k = est_meas / est_sq;
    let mut resid = 0.0f64;
    for &(e, m) in &pairs {
        let d = k * e - m;
        resid += d * d;
    }
    (resid / meas_sq).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(op: &str, rows_in: u64, rows_out: u64, bytes_in: u64, secs: f64) -> Observation {
        Observation {
            op: op.into(),
            rows_in,
            rows_out,
            bytes_in,
            secs,
        }
    }

    /// A synthetic "machine" whose true rates differ from the reference
    /// params; measurements follow its rates exactly.
    fn machine_obs() -> Vec<Observation> {
        let (cpu, io, build, probe, agg) = (5e-7, 4e-8, 3e-6, 8e-7, 1e-6);
        vec![
            obs(
                "Scan",
                10_000,
                10_000,
                240_000,
                240_000.0 * io + 10_000.0 * cpu,
            ),
            obs("Filter", 10_000, 4_000, 240_000, 10_000.0 * cpu),
            obs("Project", 4_000, 4_000, 96_000, 4_000.0 * cpu),
            obs("HashJoinBuild", 4_000, 4_000, 96_000, 4_000.0 * build),
            obs(
                "HashJoinProbe",
                10_000,
                6_000,
                240_000,
                10_000.0 * probe + 6_000.0 * cpu,
            ),
            obs(
                "HashAggregate",
                6_000,
                50,
                150_000,
                6_000.0 * agg + 50.0 * cpu,
            ),
        ]
    }

    #[test]
    fn fit_recovers_true_rates_and_reduces_error() {
        let observations = machine_obs();
        let table = CalibrationTable::fit(&observations);
        assert_eq!(table.samples, 6);
        assert!((table.io_byte.unwrap() - 4e-8).abs() / 4e-8 < 1e-9);
        assert!((table.hash_build.unwrap() - 3e-6).abs() / 3e-6 < 1e-9);
        assert!((table.agg_tuple.unwrap() - 1e-6).abs() / 1e-6 < 1e-9);

        let base = CostParams::reference();
        let calibrated = table.apply(&base);
        let before = cost_error(&base, &observations);
        let after = cost_error(&calibrated, &observations);
        assert!(
            after <= before,
            "calibration should not increase error: {before} -> {after}"
        );
        assert!(after < 0.05, "calibrated error should be small: {after}");
    }

    #[test]
    fn fit_is_deterministic() {
        let observations = machine_obs();
        assert_eq!(
            CalibrationTable::fit(&observations),
            CalibrationTable::fit(&observations)
        );
        let a = CalibrationTable::fit(&observations).apply(&CostParams::reference());
        let b = CalibrationTable::fit(&observations).apply(&CostParams::reference());
        assert_eq!(a, b);
    }

    #[test]
    fn missing_operators_scale_with_cpu_ratio() {
        // Only Filter observed, at 3x the reference cpu_tuple.
        let observations = vec![obs("Filter", 1_000, 500, 0, 1_000.0 * 3e-6)];
        let table = CalibrationTable::fit(&observations);
        let base = CostParams::reference();
        let calibrated = table.apply(&base);
        assert!((calibrated.cpu_tuple - 3e-6).abs() < 1e-12);
        // Unobserved params keep their ratio to cpu_tuple.
        assert!(
            (calibrated.hash_build / calibrated.cpu_tuple - base.hash_build / base.cpu_tuple).abs()
                < 1e-9
        );
        assert!((calibrated.startup - base.startup * 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let table = CalibrationTable::fit(&[]);
        assert_eq!(table.cpu_tuple, None);
        let params = table.apply(&CostParams::reference());
        assert_eq!(params, CostParams::reference());
        assert_eq!(cost_error(&params, &[]), 0.0);
        // Zero-work and non-finite observations are ignored.
        let junk = vec![
            obs("Filter", 0, 0, 0, 1.0),
            obs("Filter", 10, 10, 0, f64::NAN),
        ];
        assert_eq!(CalibrationTable::fit(&junk).cpu_tuple, None);
    }
}
