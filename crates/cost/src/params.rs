//! Operator cost constants.
//!
//! Every optimizer in the workspace — seller-local DP, IDP, the baselines,
//! and the buyer plan generator — costs physical work with the *same*
//! constants, so plan costs are comparable across algorithms (the quality
//! experiments divide one by the other).

/// Cost constants, all in seconds of reference-node work.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// CPU cost to process one tuple through any operator.
    pub cpu_tuple: f64,
    /// I/O cost to scan one byte from local storage.
    pub io_byte: f64,
    /// CPU cost to insert one tuple into a hash table.
    pub hash_build: f64,
    /// CPU cost to probe a hash table with one tuple.
    pub hash_probe: f64,
    /// CPU cost per tuple per `log2(n)` comparisons when sorting.
    pub sort_tuple_log: f64,
    /// CPU cost to fold one tuple into an aggregation hash table.
    pub agg_tuple: f64,
    /// Fixed per-query startup cost (parsing, plan dispatch).
    pub startup: f64,
}

impl CostParams {
    /// Defaults calibrated so that a 10⁶-row scan ≈ 1 s on the reference
    /// node — the same order as the paper's 30–40 s offers for multi-million
    /// row partitions over WAN links.
    pub fn reference() -> Self {
        CostParams {
            cpu_tuple: 1e-6,
            io_byte: 1e-8,
            hash_build: 2e-6,
            hash_probe: 1e-6,
            sort_tuple_log: 2e-7,
            agg_tuple: 2e-6,
            startup: 0.001,
        }
    }

    /// Scan cost: read `rows` rows of `width` bytes and push them up.
    pub fn scan(&self, rows: f64, width: f64) -> f64 {
        self.startup + rows * width * self.io_byte + rows * self.cpu_tuple
    }

    /// Filter cost: evaluate a predicate on `rows` input rows.
    pub fn filter(&self, rows: f64) -> f64 {
        rows * self.cpu_tuple
    }

    /// Hash-join cost: build on `build_rows`, probe with `probe_rows`,
    /// emit `out_rows`.
    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
        build_rows * self.hash_build + probe_rows * self.hash_probe + out_rows * self.cpu_tuple
    }

    /// Sort-merge join cost over *pre-sorted* inputs (sort enforcers are
    /// charged separately via [`CostParams::sort`]).
    pub fn merge_join(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        (left_rows + right_rows) * self.cpu_tuple + out_rows * self.cpu_tuple
    }

    /// Nested-loop join cost (the non-equi fallback).
    pub fn nl_join(&self, outer_rows: f64, inner_rows: f64, out_rows: f64) -> f64 {
        outer_rows * inner_rows * self.cpu_tuple + out_rows * self.cpu_tuple
    }

    /// Sort cost for `rows` rows.
    pub fn sort(&self, rows: f64) -> f64 {
        if rows <= 1.0 {
            return 0.0;
        }
        rows * rows.log2() * self.sort_tuple_log
    }

    /// Hash aggregation over `rows` input rows producing `groups` output rows.
    pub fn aggregate(&self, rows: f64, groups: f64) -> f64 {
        rows * self.agg_tuple + groups * self.cpu_tuple
    }

    /// Union (concatenation) of inputs totalling `rows` rows.
    pub fn union(&self, rows: f64) -> f64 {
        rows * self.cpu_tuple
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn million_row_scan_is_about_a_second() {
        let p = CostParams::reference();
        let c = p.scan(1e6, 50.0);
        assert!(c > 0.5 && c < 5.0, "{c}");
    }

    #[test]
    fn hash_join_beats_nl_join_on_large_inputs() {
        let p = CostParams::reference();
        assert!(p.hash_join(1e4, 1e4, 1e4) < p.nl_join(1e4, 1e4, 1e4));
    }

    #[test]
    fn sort_is_superlinear() {
        let p = CostParams::reference();
        assert!(p.sort(2e4) > 2.0 * p.sort(1e4));
        assert_eq!(p.sort(1.0), 0.0);
        assert_eq!(p.sort(0.0), 0.0);
    }

    #[test]
    fn costs_monotone_in_rows() {
        let p = CostParams::reference();
        assert!(p.scan(2e3, 10.0) > p.scan(1e3, 10.0));
        assert!(p.aggregate(2e3, 10.0) > p.aggregate(1e3, 10.0));
        assert!(p.filter(2e3) > p.filter(1e3));
        assert!(p.union(2e3) > p.union(1e3));
    }
}
