//! Per-node resource model.

/// Compute resources of one autonomous node.
///
/// The paper stresses that autonomous sellers price offers against "the
/// available network resources and the current workload" — heterogeneity and
/// load are what make identical queries cost differently at different nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeResources {
    /// CPU speed relative to the reference node (1.0 = reference; 2.0 =
    /// twice as fast). Scales all CPU operator costs by `1/speed`.
    pub cpu_speed: f64,
    /// Sequential I/O rate relative to the reference node.
    pub io_speed: f64,
    /// Current load factor: 1.0 = idle; `k` = queries take `k`× longer.
    pub load: f64,
}

impl NodeResources {
    /// The reference node: unit speed, idle.
    pub fn reference() -> Self {
        NodeResources {
            cpu_speed: 1.0,
            io_speed: 1.0,
            load: 1.0,
        }
    }

    /// A node `s`× the reference speed (CPU and I/O), idle.
    pub fn uniform(s: f64) -> Self {
        NodeResources {
            cpu_speed: s,
            io_speed: s,
            load: 1.0,
        }
    }

    /// Effective multiplier on CPU work.
    pub fn cpu_factor(&self) -> f64 {
        self.load / self.cpu_speed
    }

    /// Effective multiplier on I/O work.
    pub fn io_factor(&self) -> f64 {
        self.load / self.io_speed
    }

    /// Validate (all factors strictly positive).
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("cpu_speed", self.cpu_speed),
            ("io_speed", self.io_speed),
            ("load", self.load),
        ] {
            if v <= 0.0 || v.is_nan() || !v.is_finite() {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for NodeResources {
    fn default() -> Self {
        NodeResources::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_combine_speed_and_load() {
        let r = NodeResources {
            cpu_speed: 2.0,
            io_speed: 4.0,
            load: 3.0,
        };
        assert!((r.cpu_factor() - 1.5).abs() < 1e-12);
        assert!((r.io_factor() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn faster_node_is_cheaper() {
        let slow = NodeResources::uniform(0.5);
        let fast = NodeResources::uniform(2.0);
        assert!(fast.cpu_factor() < slow.cpu_factor());
    }

    #[test]
    fn validation() {
        assert!(NodeResources::reference().validate().is_ok());
        assert!(NodeResources {
            cpu_speed: 0.0,
            io_speed: 1.0,
            load: 1.0
        }
        .validate()
        .is_err());
        assert!(NodeResources {
            cpu_speed: 1.0,
            io_speed: -1.0,
            load: 1.0
        }
        .validate()
        .is_err());
        assert!(NodeResources {
            cpu_speed: 1.0,
            io_speed: 1.0,
            load: f64::NAN
        }
        .validate()
        .is_err());
    }
}
