//! Cost model for the query-trading optimizer.
//!
//! §3.1 of the paper defines what an offer promises: "the total time required
//! to execute and transmit the results of the query back to the buyer, the
//! time required to find the first row of the answer, the average rate of
//! retrieved rows per second, the total rows of the answer, the freshness of
//! the data, the completeness of the data, and possibly a charged amount for
//! this answer". [`properties::AnswerProperties`] is exactly that tuple, and
//! [`properties::Valuation`] is the "administrator-defined weighting
//! aggregation function" the buyer ranks offers with.
//!
//! The crate also provides what sellers need to *produce* those properties:
//!
//! * [`resources`] — per-node CPU/IO speed and current load;
//! * [`network`] — latency/bandwidth links and transfer-time estimation;
//! * [`params`] — the operator cost constants shared by every optimizer in
//!   the workspace (so plan costs are comparable across algorithms);
//! * [`cardinality`] — statistics-based cardinality and width estimation for
//!   [`qt_query::Query`] fragments.

pub mod calibrate;
pub mod cardinality;
pub mod memo;
pub mod network;
pub mod params;
pub mod properties;
pub mod resources;

pub use calibrate::{cost_error, CalibrationTable, Observation};
pub use cardinality::{CardEstimate, CardinalityEstimator, RelProfile, StatsSource};
pub use memo::SubsetCardMemo;
pub use network::NetLink;
pub use params::CostParams;
pub use properties::{AnswerProperties, Valuation};
pub use resources::NodeResources;
