//! Property-based tests of the cost model: monotonicity, composition laws,
//! and estimator sanity.

use proptest::prelude::*;
use qt_cost::{AnswerProperties, CostParams, NetLink, NodeResources, Valuation};

proptest! {
    /// Operator costs are monotone in their row inputs.
    #[test]
    fn operator_costs_are_monotone(
        rows in 1.0f64..1e6,
        extra in 1.0f64..1e5,
        width in 1.0f64..200.0,
    ) {
        let p = CostParams::reference();
        prop_assert!(p.scan(rows + extra, width) > p.scan(rows, width));
        prop_assert!(p.filter(rows + extra) > p.filter(rows));
        prop_assert!(p.union(rows + extra) > p.union(rows));
        prop_assert!(p.sort(rows + extra) >= p.sort(rows));
        prop_assert!(
            p.hash_join(rows + extra, rows, rows) > p.hash_join(rows, rows, rows)
        );
        prop_assert!(p.nl_join(rows + extra, rows, rows) > p.nl_join(rows, rows, rows));
        prop_assert!(p.aggregate(rows + extra, 10.0) > p.aggregate(rows, 10.0));
    }

    /// Link transfer time is monotone in bytes and latency is its floor.
    #[test]
    fn transfer_time_monotone(bytes in 0.0f64..1e9, extra in 1.0f64..1e6) {
        for link in [NetLink::lan(), NetLink::wan()] {
            prop_assert!(link.transfer_time(bytes + extra) > link.transfer_time(bytes));
            prop_assert!(link.transfer_time(bytes) >= link.latency);
        }
    }

    /// Parallel composition of answer properties: commutative, time is the
    /// max, size/price are sums, completeness multiplies.
    #[test]
    fn parallel_composition_laws(
        t1 in 0.0f64..100.0, t2 in 0.0f64..100.0,
        r1 in 0.0f64..1e5, r2 in 0.0f64..1e5,
        p1 in 0.0f64..10.0, p2 in 0.0f64..10.0,
    ) {
        let a = AnswerProperties::timed(t1, r1, r1 * 8.0).priced(p1);
        let b = AnswerProperties::timed(t2, r2, r2 * 8.0).priced(p2);
        let ab = a.clone() + b.clone();
        let ba = b.clone() + a.clone();
        prop_assert!((ab.total_time - ba.total_time).abs() < 1e-9);
        prop_assert!((ab.total_time - t1.max(t2)).abs() < 1e-9);
        prop_assert!((ab.rows - (r1 + r2)).abs() < 1e-6);
        prop_assert!((ab.price - (p1 + p2)).abs() < 1e-9);
        prop_assert!((ab.bytes - ba.bytes).abs() < 1e-6);
    }

    /// delayed_by shifts both time dimensions by exactly the delay.
    #[test]
    fn delay_shifts_times(t in 0.0f64..100.0, d in 0.0f64..100.0, rows in 1.0f64..1e4) {
        let p = AnswerProperties::timed(t, rows, rows * 8.0);
        let q = p.clone().delayed_by(d);
        prop_assert!((q.total_time - (p.total_time + d)).abs() < 1e-9);
        prop_assert!((q.first_row_time - (p.first_row_time + d)).abs() < 1e-9);
    }

    /// The valuation is linear: score(p delayed by d) - score(p) =
    /// w_total·d + w_first·d for time-only valuations.
    #[test]
    fn valuation_is_linear_in_time(
        t in 0.0f64..100.0, d in 0.0f64..50.0,
        w_t in 0.0f64..2.0, w_f in 0.0f64..2.0,
    ) {
        let v = Valuation {
            w_total_time: w_t,
            w_first_row: w_f,
            w_price: 0.0,
            w_staleness: 0.0,
            w_incompleteness: 0.0,
        };
        let p = AnswerProperties::timed(t, 100.0, 800.0);
        let delta = v.score(&p.clone().delayed_by(d)) - v.score(&p);
        prop_assert!((delta - (w_t + w_f) * d).abs() < 1e-6);
    }

    /// Faster nodes always report lower effective work factors.
    #[test]
    fn resources_scale_inversely(speed in 0.1f64..10.0, boost in 1.1f64..4.0) {
        let slow = NodeResources::uniform(speed);
        let fast = NodeResources::uniform(speed * boost);
        prop_assert!(fast.cpu_factor() < slow.cpu_factor());
        prop_assert!(fast.io_factor() < slow.io_factor());
    }
}
