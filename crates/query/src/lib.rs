//! Query algebra for the query-trading optimizer.
//!
//! The unit of trade in QT is a *query* — a select-project-join block with
//! optional aggregation, whose `FROM` extents may be restricted to explicit
//! subsets of each relation's horizontal partitions. This crate provides:
//!
//! * [`query`] — the [`Query`] type itself, its invariants, canonical form,
//!   and SQL rendering;
//! * [`predicate`] — column references, comparison predicates, and the small
//!   amount of predicate calculus (implication, simplification) the analysers
//!   need;
//! * [`partset`] — compact partition-subset bitsets, the representation of
//!   "the part of the data the seller actually has" (§3.4);
//! * [`sql`] — a recursive-descent parser for the SQL subset used in examples
//!   and tests;
//! * [`rewrite`] — the seller-side query-rewriting algorithm of §3.4
//!   (remove non-local relations, restrict extents to local partitions);
//! * [`contain`] — conjunctive-predicate implication used for view matching
//!   and redundancy elimination;
//! * [`views`] — materialized-view definitions and the subset/superset
//!   matching used by the seller predicates analyser (§3.5).
//!
//! ## Simplifications vs. full SQL
//!
//! Each relation appears at most once per query (no self-joins), predicates
//! are conjunctions of `col op col` / `col op const` comparisons, and
//! aggregates are `COUNT/SUM/AVG/MIN/MAX` over a single column with an
//! optional `GROUP BY`. This covers the paper's entire running workload.

pub mod contain;
pub mod partset;
pub mod predicate;
pub mod query;
pub mod rewrite;
pub mod sql;
pub mod views;

pub use contain::{implies, implies_all};
pub use partset::PartSet;
pub use predicate::{Col, CompOp, Operand, Predicate};
pub use query::{AggFunc, Query, QueryError, SelectItem};
pub use rewrite::rewrite_for_holdings;
pub use sql::{parse_query, ParseError};
pub use views::{MaterializedView, ViewMatch};
