//! Conjunctive-predicate implication.
//!
//! The buyer and seller predicates analysers (§3.5, §3.7) and the
//! materialized-view matcher need to answer one question: given a
//! conjunction `P`, does `P` imply a predicate `q`? We implement the classic
//! sound-but-incomplete syntactic test over per-column value intervals: exact
//! for the comparison predicates this model admits on a single column, and
//! identity-based for column-to-column predicates.

use crate::predicate::{Col, CompOp, Operand, Predicate};
use qt_catalog::Value;
use std::collections::BTreeMap;

/// Per-column knowledge derived from a conjunction: an interval plus
/// equality/inequality constants.
#[derive(Debug, Clone, Default)]
struct ColRange {
    /// Greatest lower bound `(value, inclusive)`.
    lo: Option<(Value, bool)>,
    /// Least upper bound `(value, inclusive)`.
    hi: Option<(Value, bool)>,
    /// Pinned value from an equality predicate.
    eq: Option<Value>,
    /// Excluded values from `<>` predicates.
    ne: Vec<Value>,
}

impl ColRange {
    fn add(&mut self, op: CompOp, v: &Value) {
        match op {
            CompOp::Eq => {
                self.eq = Some(v.clone());
                self.tighten_lo(v, true);
                self.tighten_hi(v, true);
            }
            CompOp::Ne => self.ne.push(v.clone()),
            CompOp::Lt => self.tighten_hi(v, false),
            CompOp::Le => self.tighten_hi(v, true),
            CompOp::Gt => self.tighten_lo(v, false),
            CompOp::Ge => self.tighten_lo(v, true),
        }
    }

    fn tighten_lo(&mut self, v: &Value, inclusive: bool) {
        let better = match &self.lo {
            None => true,
            Some((cur, cur_inc)) => v > cur || (v == cur && *cur_inc && !inclusive),
        };
        if better {
            self.lo = Some((v.clone(), inclusive));
        }
    }

    fn tighten_hi(&mut self, v: &Value, inclusive: bool) {
        let better = match &self.hi {
            None => true,
            Some((cur, cur_inc)) => v < cur || (v == cur && *cur_inc && !inclusive),
        };
        if better {
            self.hi = Some((v.clone(), inclusive));
        }
    }

    /// Does every value in this range satisfy `op v`?
    fn implies(&self, op: CompOp, v: &Value) -> bool {
        if let Some(eq) = &self.eq {
            return op.eval(eq, v);
        }
        match op {
            CompOp::Eq => false, // a non-pinned range can't imply equality
            CompOp::Ne => {
                // Implied when v is outside the interval, or explicitly excluded.
                self.ne.contains(v)
                    || self
                        .lo
                        .as_ref()
                        .is_some_and(|(lo, inc)| v < lo || (v == lo && !inc))
                    || self
                        .hi
                        .as_ref()
                        .is_some_and(|(hi, inc)| v > hi || (v == hi && !inc))
            }
            CompOp::Lt => self
                .hi
                .as_ref()
                .is_some_and(|(hi, inc)| hi < v || (hi == v && !inc)),
            CompOp::Le => self.hi.as_ref().is_some_and(|(hi, _)| hi <= v),
            CompOp::Gt => self
                .lo
                .as_ref()
                .is_some_and(|(lo, inc)| lo > v || (lo == v && !inc)),
            CompOp::Ge => self.lo.as_ref().is_some_and(|(lo, _)| lo >= v),
        }
    }

    /// Is the range empty (conjunction unsatisfiable on this column)?
    fn is_empty(&self) -> bool {
        if let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (&self.lo, &self.hi) {
            if lo > hi || (lo == hi && !(*lo_inc && *hi_inc)) {
                return true;
            }
        }
        if let Some(eq) = &self.eq {
            if self.ne.contains(eq) {
                return true;
            }
        }
        false
    }
}

fn ranges_of(preds: &[Predicate]) -> BTreeMap<Col, ColRange> {
    let mut m: BTreeMap<Col, ColRange> = BTreeMap::new();
    for p in preds {
        if let Operand::Const(v) = &p.right {
            m.entry(p.left).or_default().add(p.op, v);
        }
    }
    m
}

/// Does the conjunction `premises` imply `conclusion`?
///
/// Sound but incomplete: `true` guarantees implication; `false` means "not
/// provable here". Column-to-column predicates are implied only by a
/// syntactically identical (canonical) premise.
pub fn implies(premises: &[Predicate], conclusion: &Predicate) -> bool {
    let conclusion = conclusion.clone().canonical();
    // Identity.
    if premises.iter().any(|p| p.clone().canonical() == conclusion) {
        return true;
    }
    match &conclusion.right {
        Operand::Col(_) => false,
        Operand::Const(v) => {
            let ranges = ranges_of(premises);
            ranges
                .get(&conclusion.left)
                .is_some_and(|r| r.implies(conclusion.op, v))
        }
    }
}

/// Does `premises` imply *every* predicate in `conclusions`?
pub fn implies_all(premises: &[Predicate], conclusions: &[Predicate]) -> bool {
    conclusions.iter().all(|c| implies(premises, c))
}

/// Simplify a conjunction: drop conjuncts implied by the others; return
/// `None` if the conjunction is detectably unsatisfiable.
pub fn simplify(preds: &[Predicate]) -> Option<Vec<Predicate>> {
    let ranges = ranges_of(preds);
    if ranges.values().any(ColRange::is_empty) {
        return None;
    }
    let mut kept: Vec<Predicate> = Vec::new();
    for (i, p) in preds.iter().enumerate() {
        let mut others: Vec<Predicate> = Vec::with_capacity(preds.len() - 1 + kept.len());
        others.extend_from_slice(&kept);
        others.extend(preds[i + 1..].iter().cloned());
        if !implies(&others, p) {
            kept.push(p.clone().canonical());
        }
    }
    kept.sort();
    kept.dedup();
    Some(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::RelId;

    fn col(a: usize) -> Col {
        Col::new(RelId(0), a)
    }

    fn pc(attr: usize, op: CompOp, v: i64) -> Predicate {
        Predicate::with_const(col(attr), op, v)
    }

    #[test]
    fn identity_implication() {
        let p = pc(0, CompOp::Gt, 5);
        assert!(implies(std::slice::from_ref(&p), &p));
    }

    #[test]
    fn equality_implies_range() {
        let prem = [pc(0, CompOp::Eq, 5)];
        assert!(implies(&prem, &pc(0, CompOp::Ge, 3)));
        assert!(implies(&prem, &pc(0, CompOp::Le, 5)));
        assert!(implies(&prem, &pc(0, CompOp::Ne, 9)));
        assert!(!implies(&prem, &pc(0, CompOp::Gt, 5)));
        assert!(!implies(&prem, &pc(0, CompOp::Eq, 6)));
    }

    #[test]
    fn range_implies_weaker_range() {
        let prem = [pc(0, CompOp::Gt, 10)];
        assert!(implies(&prem, &pc(0, CompOp::Gt, 5)));
        assert!(implies(&prem, &pc(0, CompOp::Ge, 10)));
        assert!(implies(&prem, &pc(0, CompOp::Ne, 10)));
        assert!(implies(&prem, &pc(0, CompOp::Ne, 3)));
        assert!(!implies(&prem, &pc(0, CompOp::Gt, 11)));
        assert!(!implies(&prem, &pc(0, CompOp::Lt, 100)));
    }

    #[test]
    fn interval_implies_not_equal_outside() {
        let prem = [pc(0, CompOp::Ge, 0), pc(0, CompOp::Lt, 10)];
        assert!(implies(&prem, &pc(0, CompOp::Ne, 10)));
        assert!(implies(&prem, &pc(0, CompOp::Ne, -1)));
        assert!(!implies(&prem, &pc(0, CompOp::Ne, 5)));
        assert!(!implies(&prem, &pc(0, CompOp::Le, 9))); // ints not modeled densely
        assert!(implies(&prem, &pc(0, CompOp::Lt, 10)));
    }

    #[test]
    fn different_columns_do_not_interact() {
        let prem = [pc(0, CompOp::Eq, 5)];
        assert!(!implies(&prem, &pc(1, CompOp::Eq, 5)));
    }

    #[test]
    fn join_predicate_only_identity() {
        let j1 = Predicate::eq_cols(Col::new(RelId(0), 0), Col::new(RelId(1), 2));
        let j2 = Predicate::eq_cols(Col::new(RelId(1), 2), Col::new(RelId(0), 0));
        assert!(implies(std::slice::from_ref(&j1), &j2)); // canonical forms match
        let j3 = Predicate::eq_cols(Col::new(RelId(0), 1), Col::new(RelId(1), 2));
        assert!(!implies(&[j1], &j3));
    }

    #[test]
    fn implies_all_checks_everything() {
        let prem = [pc(0, CompOp::Eq, 5), pc(1, CompOp::Gt, 0)];
        let good = [pc(0, CompOp::Ge, 5), pc(1, CompOp::Ge, 0)];
        assert!(implies_all(&prem, &good));
        let bad = [pc(0, CompOp::Ge, 5), pc(1, CompOp::Gt, 1)];
        assert!(!implies_all(&prem, &bad));
    }

    #[test]
    fn gt_implies_ge_same_bound() {
        // x > 0 implies x >= 0.
        assert!(implies(&[pc(0, CompOp::Gt, 0)], &pc(0, CompOp::Ge, 0)));
    }

    #[test]
    fn simplify_drops_redundant() {
        let preds = vec![pc(0, CompOp::Gt, 5), pc(0, CompOp::Gt, 3)];
        let s = simplify(&preds).unwrap();
        assert_eq!(s, vec![pc(0, CompOp::Gt, 5)]);
    }

    #[test]
    fn simplify_detects_contradiction() {
        assert!(simplify(&[pc(0, CompOp::Gt, 5), pc(0, CompOp::Lt, 3)]).is_none());
        assert!(simplify(&[pc(0, CompOp::Eq, 5), pc(0, CompOp::Ne, 5)]).is_none());
        assert!(simplify(&[pc(0, CompOp::Lt, 5), pc(0, CompOp::Ge, 5)]).is_none());
    }

    #[test]
    fn simplify_keeps_satisfiable() {
        let preds = vec![
            pc(0, CompOp::Ge, 0),
            pc(0, CompOp::Lt, 10),
            pc(1, CompOp::Eq, 3),
        ];
        let s = simplify(&preds).unwrap();
        assert_eq!(s.len(), 3);
    }
}
