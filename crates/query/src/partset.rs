//! Partition subsets.
//!
//! A [`PartSet`] records *which horizontal partitions of one relation* a
//! query ranges over. The seller rewrite (§3.4) intersects the buyer's
//! requested set with the seller's holdings; the buyer plan generator needs
//! exact union/coverage reasoning to decide whether a union of offers
//! reconstructs the full requested extent. Representing the coverage as an
//! explicit bitset (rather than re-deriving it from SQL predicates) makes
//! both operations exact.

use qt_catalog::{PartId, RelId};
use std::fmt;

/// Maximum number of partitions per relation supported by the bitset.
pub const MAX_PARTS: u16 = 64;

/// A subset of the partitions `0..n` of one relation, as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartSet {
    bits: u64,
}

impl PartSet {
    /// The empty set.
    pub const EMPTY: PartSet = PartSet { bits: 0 };

    /// The set `{0, …, n-1}` (all partitions of a relation with `n`
    /// partitions).
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn all(n: u16) -> PartSet {
        assert!(
            n <= MAX_PARTS,
            "at most {MAX_PARTS} partitions per relation"
        );
        if n == 64 {
            PartSet { bits: u64::MAX }
        } else {
            PartSet {
                bits: (1u64 << n) - 1,
            }
        }
    }

    /// The singleton `{idx}`.
    ///
    /// # Panics
    /// Panics if `idx >= 64`.
    pub fn single(idx: u16) -> PartSet {
        assert!(idx < MAX_PARTS);
        PartSet { bits: 1u64 << idx }
    }

    /// Build from an iterator of partition indices.
    pub fn from_indices(indices: impl IntoIterator<Item = u16>) -> PartSet {
        let mut s = PartSet::EMPTY;
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Build from the [`PartId`]s of `rel` in `parts` (ids of other relations
    /// are ignored).
    pub fn from_part_ids(rel: RelId, parts: impl IntoIterator<Item = PartId>) -> PartSet {
        PartSet::from_indices(parts.into_iter().filter(|p| p.rel == rel).map(|p| p.idx))
    }

    /// Insert index `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= 64`.
    pub fn insert(&mut self, idx: u16) {
        assert!(idx < MAX_PARTS);
        self.bits |= 1u64 << idx;
    }

    /// Does the set contain `idx`?
    pub fn contains(&self, idx: u16) -> bool {
        idx < MAX_PARTS && self.bits & (1u64 << idx) != 0
    }

    /// Number of partitions in the set.
    pub fn len(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Set intersection.
    pub fn intersect(&self, other: &PartSet) -> PartSet {
        PartSet {
            bits: self.bits & other.bits,
        }
    }

    /// Set union.
    pub fn union(&self, other: &PartSet) -> PartSet {
        PartSet {
            bits: self.bits | other.bits,
        }
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &PartSet) -> PartSet {
        PartSet {
            bits: self.bits & !other.bits,
        }
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset(&self, other: &PartSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Are the two sets disjoint?
    pub fn is_disjoint(&self, other: &PartSet) -> bool {
        self.bits & other.bits == 0
    }

    /// Iterate over the contained indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        (0..MAX_PARTS).filter(|i| self.contains(*i))
    }

    /// The raw mask (for compact fingerprints).
    pub fn bits(&self) -> u64 {
        self.bits
    }
}

impl fmt::Display for PartSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u16> for PartSet {
    fn from_iter<T: IntoIterator<Item = u16>>(iter: T) -> Self {
        PartSet::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_single() {
        assert_eq!(PartSet::all(3).len(), 3);
        assert_eq!(PartSet::all(64).len(), 64);
        assert_eq!(PartSet::all(0), PartSet::EMPTY);
        assert!(PartSet::single(5).contains(5));
        assert!(!PartSet::single(5).contains(4));
    }

    #[test]
    fn set_algebra() {
        let a = PartSet::from_indices([0, 1, 2]);
        let b = PartSet::from_indices([2, 3]);
        assert_eq!(a.intersect(&b), PartSet::from_indices([2]));
        assert_eq!(a.union(&b), PartSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.minus(&b), PartSet::from_indices([0, 1]));
        assert!(PartSet::from_indices([1]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(PartSet::from_indices([0]).is_disjoint(&b));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn from_part_ids_filters_by_relation() {
        let r0 = RelId(0);
        let r1 = RelId(1);
        let s = PartSet::from_part_ids(
            r0,
            [PartId::new(r0, 1), PartId::new(r1, 2), PartId::new(r0, 3)],
        );
        assert_eq!(s, PartSet::from_indices([1, 3]));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = PartSet::from_indices([7, 1, 4]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
        assert_eq!(s.to_string(), "{1,4,7}");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_partitions_rejected() {
        PartSet::all(65);
    }

    #[test]
    fn coverage_check_pattern() {
        // The buyer's completeness test: do the offered subsets union to the
        // full requested extent?
        let requested = PartSet::all(4);
        let offers = [PartSet::from_indices([0, 1]), PartSet::from_indices([2, 3])];
        let covered = offers.iter().fold(PartSet::EMPTY, |acc, o| acc.union(o));
        assert_eq!(covered, requested);
    }
}
