//! Column references and comparison predicates.

use qt_catalog::{RelId, SchemaDict, Value};
use std::fmt;

/// Reference to one attribute of one relation. Because a relation appears at
/// most once per query, `(rel, attr)` identifies a column unambiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Col {
    /// The relation.
    pub rel: RelId,
    /// Attribute index within the relation schema.
    pub attr: usize,
}

impl Col {
    /// Convenience constructor.
    pub fn new(rel: RelId, attr: usize) -> Self {
        Col { rel, attr }
    }

    /// Render as `relname.attrname`.
    pub fn display_with<'a>(&'a self, dict: &'a SchemaDict) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Col, &'a SchemaDict);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let meta = self.1.rel(self.0.rel);
                write!(
                    f,
                    "{}.{}",
                    meta.schema.name,
                    meta.schema.attr(self.0.attr).name
                )
            }
        }
        D(self, dict)
    }
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompOp {
    /// The operator with sides swapped: `a op b  ≡  b op.flip() a`.
    pub fn flip(&self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Ne => CompOp::Ne,
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ge => CompOp::Le,
        }
    }

    /// Evaluate on ordered values.
    pub fn eval(&self, l: &Value, r: &Value) -> bool {
        match self {
            CompOp::Eq => l == r,
            CompOp::Ne => l != r,
            CompOp::Lt => l < r,
            CompOp::Le => l <= r,
            CompOp::Gt => l > r,
            CompOp::Ge => l >= r,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Eq => "=",
            CompOp::Ne => "<>",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// Another column (a join predicate when the relations differ).
    Col(Col),
    /// A constant (a selection predicate).
    Const(Value),
}

/// One conjunct of a query's `WHERE` clause: `left op right`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Predicate {
    /// Left column.
    pub left: Col,
    /// Comparison operator.
    pub op: CompOp,
    /// Right column or constant.
    pub right: Operand,
}

impl Predicate {
    /// `left = right` between two columns (the common join form).
    pub fn eq_cols(a: Col, b: Col) -> Predicate {
        Predicate {
            left: a,
            op: CompOp::Eq,
            right: Operand::Col(b),
        }
        .canonical()
    }

    /// `col op value`.
    pub fn with_const(col: Col, op: CompOp, value: impl Into<Value>) -> Predicate {
        Predicate {
            left: col,
            op,
            right: Operand::Const(value.into()),
        }
    }

    /// Is this a join predicate (column-to-column across two relations)?
    pub fn is_join(&self) -> bool {
        matches!(&self.right, Operand::Col(c) if c.rel != self.left.rel)
    }

    /// Is this a selection predicate (column-to-constant, or column-to-column
    /// within one relation)?
    pub fn is_selection(&self) -> bool {
        !self.is_join()
    }

    /// All relations the predicate mentions (1 or 2).
    pub fn rels(&self) -> Vec<RelId> {
        let mut v = vec![self.left.rel];
        if let Operand::Col(c) = &self.right {
            if c.rel != self.left.rel {
                v.push(c.rel);
            }
        }
        v
    }

    /// All columns the predicate mentions.
    pub fn cols(&self) -> Vec<Col> {
        let mut v = vec![self.left];
        if let Operand::Col(c) = &self.right {
            v.push(*c);
        }
        v
    }

    /// Canonical form: column-to-column comparisons put the smaller column on
    /// the left (flipping the operator), so that syntactically different but
    /// equivalent predicates compare equal.
    pub fn canonical(mut self) -> Predicate {
        if let Operand::Col(c) = self.right {
            if c < self.left {
                self.right = Operand::Col(self.left);
                self.left = c;
                self.op = self.op.flip();
            }
        }
        self
    }

    /// Render with attribute names from `dict`.
    pub fn display_with<'a>(&'a self, dict: &'a SchemaDict) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Predicate, &'a SchemaDict);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {} ", self.0.left.display_with(self.1), self.0.op)?;
                match &self.0.right {
                    Operand::Col(c) => write!(f, "{}", c.display_with(self.1)),
                    Operand::Const(v) => write!(f, "{v}"),
                }
            }
        }
        D(self, dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(r: u32, a: usize) -> Col {
        Col::new(RelId(r), a)
    }

    #[test]
    fn flip_is_involutive() {
        for op in [
            CompOp::Eq,
            CompOp::Ne,
            CompOp::Lt,
            CompOp::Le,
            CompOp::Gt,
            CompOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn eval_matches_semantics() {
        let a = Value::Int(1);
        let b = Value::Int(2);
        assert!(CompOp::Lt.eval(&a, &b));
        assert!(CompOp::Le.eval(&a, &a));
        assert!(CompOp::Ne.eval(&a, &b));
        assert!(!CompOp::Gt.eval(&a, &b));
        assert!(CompOp::Ge.eval(&b, &b));
        assert!(CompOp::Eq.eval(&a, &a));
    }

    #[test]
    fn canonical_orders_join_columns() {
        let p1 = Predicate {
            left: col(1, 0),
            op: CompOp::Lt,
            right: Operand::Col(col(0, 2)),
        }
        .canonical();
        let p2 = Predicate {
            left: col(0, 2),
            op: CompOp::Gt,
            right: Operand::Col(col(1, 0)),
        }
        .canonical();
        assert_eq!(p1, p2);
        assert_eq!(p1.left, col(0, 2));
        assert_eq!(p1.op, CompOp::Gt);
    }

    #[test]
    fn join_vs_selection_classification() {
        let join = Predicate::eq_cols(col(0, 0), col(1, 1));
        assert!(join.is_join());
        assert_eq!(join.rels(), vec![RelId(0), RelId(1)]);
        let sel = Predicate::with_const(col(0, 0), CompOp::Gt, 5i64);
        assert!(sel.is_selection());
        assert_eq!(sel.rels(), vec![RelId(0)]);
        let same_rel = Predicate::eq_cols(col(0, 0), col(0, 1));
        assert!(same_rel.is_selection());
    }

    #[test]
    fn flip_preserves_semantics() {
        let vals = [Value::Int(1), Value::Int(2), Value::Int(2)];
        for op in [
            CompOp::Eq,
            CompOp::Ne,
            CompOp::Lt,
            CompOp::Le,
            CompOp::Gt,
            CompOp::Ge,
        ] {
            for l in &vals {
                for r in &vals {
                    assert_eq!(op.eval(l, r), op.flip().eval(r, l), "{op} {l} {r}");
                }
            }
        }
    }
}
