//! The seller-side query-rewriting algorithm of §3.4.
//!
//! > "Sellers may not have all necessary base relations, or relations'
//! > partitions, to process all elements of Q. Therefore, they initially
//! > examine each query of Q and rewrite it … removing all non-local
//! > relations and restricting the base-relation extents to those partitions
//! > available locally."
//!
//! In the running example, the Myconos node holds all of `invoiceline` but
//! only the `office = 'Myconos'` partition of `customer`; the rewrite
//! produces the same query restricted to that partition.

use crate::partset::PartSet;
use crate::query::Query;
use qt_catalog::{NodeHoldings, RelId};
use std::collections::{BTreeMap, BTreeSet};

/// Rewrite `q` for the node described by `holdings`: drop relations the node
/// holds nothing of, and restrict every kept relation's extent to the
/// partitions held locally (intersected with what `q` asked for).
///
/// Aggregation is stripped — what a seller can always offer is the SPJ core
/// over its fragment; whether a *partial aggregate* may be offered instead is
/// a separate, plan-level decision (see `qt-core`).
///
/// Returns `None` when the node holds no useful data at all.
pub fn rewrite_for_holdings(q: &Query, holdings: &NodeHoldings) -> Option<Query> {
    let mut kept: BTreeMap<RelId, PartSet> = BTreeMap::new();
    for (&rel, wanted) in &q.relations {
        let have = PartSet::from_part_ids(rel, holdings.parts_of(rel));
        let local = wanted.intersect(&have);
        if !local.is_empty() {
            kept.insert(rel, local);
        }
    }
    if kept.is_empty() {
        return None;
    }
    let rels: BTreeSet<RelId> = kept.keys().copied().collect();
    let mut rewritten = q.strip_aggregation().restrict_to_rels(&rels);
    for (rel, parts) in kept {
        rewritten.relations.insert(rel, parts);
    }
    Some(rewritten)
}

/// Can this node answer `q` *exactly* by itself — i.e. does it hold every
/// requested partition of every relation in `q`?
pub fn can_answer_exactly(q: &Query, holdings: &NodeHoldings) -> bool {
    q.relations.iter().all(|(&rel, wanted)| {
        let have = PartSet::from_part_ids(rel, holdings.parts_of(rel));
        wanted.is_subset(&have)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Col, Predicate};
    use crate::query::{AggFunc, SelectItem};
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning,
        RelationSchema, Value,
    };

    /// Telecom catalog: customer list-partitioned by office over 3 nodes,
    /// invoiceline fully replicated on node 2 (Myconos) only.
    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        let cust = b.add_relation(
            RelationSchema::new(
                "customer",
                vec![
                    ("custid", AttrType::Int),
                    ("custname", AttrType::Str),
                    ("office", AttrType::Str),
                ],
            ),
            Partitioning::List {
                attr: 2,
                groups: vec![
                    vec![Value::str("Athens")],
                    vec![Value::str("Corfu")],
                    vec![Value::str("Myconos")],
                ],
            },
        );
        let inv = b.add_relation(
            RelationSchema::new(
                "invoiceline",
                vec![
                    ("invid", AttrType::Int),
                    ("linenum", AttrType::Int),
                    ("custid", AttrType::Int),
                    ("charge", AttrType::Float),
                ],
            ),
            Partitioning::Single,
        );
        for i in 0..3u16 {
            b.set_stats(
                PartId::new(cust, i),
                PartitionStats::synthetic(100, &[100, 90, 1]),
            );
            b.place(PartId::new(cust, i), NodeId(i as u32));
        }
        b.set_stats(
            PartId::new(inv, 0),
            PartitionStats::synthetic(1000, &[200, 5, 300, 50]),
        );
        b.place(PartId::new(inv, 0), NodeId(2));
        b.build()
    }

    fn motivating(catalog: &Catalog) -> Query {
        let cust = RelId(0);
        let inv = RelId(1);
        Query::over_full(&catalog.dict, [cust, inv])
            .with_predicates(vec![Predicate::eq_cols(
                Col::new(cust, 0),
                Col::new(inv, 2),
            )])
            .with_select(vec![
                SelectItem::Col(Col::new(cust, 2)),
                SelectItem::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Col::new(inv, 3)),
                },
            ])
            .with_group_by(vec![Col::new(cust, 2)])
    }

    #[test]
    fn myconos_keeps_both_relations_restricted() {
        let c = catalog();
        let q = motivating(&c);
        let myconos = c.holdings_of(NodeId(2));
        let rw = rewrite_for_holdings(&q, &myconos).unwrap();
        rw.validate(&c.dict).unwrap();
        assert_eq!(rw.num_relations(), 2);
        // customer restricted to the Myconos partition (index 2).
        assert_eq!(rw.relations[&RelId(0)], PartSet::single(2));
        // invoiceline fully available.
        assert_eq!(rw.relations[&RelId(1)], PartSet::all(1));
        // Join predicate survives since both relations survive.
        assert_eq!(rw.join_predicates().count(), 1);
        // Aggregation is stripped; office and charge are plain outputs.
        assert!(!rw.is_aggregate());
        let sql = rw.display_with(&c.dict).to_string();
        assert!(sql.contains("office = 'Myconos'"), "{sql}");
    }

    #[test]
    fn athens_loses_invoiceline() {
        let c = catalog();
        let q = motivating(&c);
        let athens = c.holdings_of(NodeId(0));
        let rw = rewrite_for_holdings(&q, &athens).unwrap();
        assert_eq!(rw.num_relations(), 1);
        assert_eq!(rw.relations[&RelId(0)], PartSet::single(0));
        // The cross-relation join predicate is dropped with invoiceline, but
        // the join column custid must still be in the output.
        assert_eq!(rw.join_predicates().count(), 0);
        assert!(rw.select.contains(&SelectItem::Col(Col::new(RelId(0), 0))));
    }

    #[test]
    fn data_less_node_gets_none() {
        let c = catalog();
        let q = motivating(&c);
        // Node 7 holds nothing.
        let empty = c.holdings_of(NodeId(7));
        assert!(rewrite_for_holdings(&q, &empty).is_none());
    }

    #[test]
    fn request_outside_holdings_is_none() {
        let c = catalog();
        let cust = RelId(0);
        // Ask only for the Corfu partition; Athens holds only Athens.
        let q = Query::new([(cust, PartSet::single(1))])
            .with_select(vec![SelectItem::Col(Col::new(cust, 1))]);
        let athens = c.holdings_of(NodeId(0));
        assert!(rewrite_for_holdings(&q, &athens).is_none());
    }

    #[test]
    fn exact_answer_detection() {
        let c = catalog();
        let q = motivating(&c);
        assert!(!can_answer_exactly(&q, &c.holdings_of(NodeId(2))));
        let cust = RelId(0);
        let q_myc = Query::new([(cust, PartSet::single(2))])
            .with_select(vec![SelectItem::Col(Col::new(cust, 1))]);
        assert!(can_answer_exactly(&q_myc, &c.holdings_of(NodeId(2))));
        assert!(!can_answer_exactly(&q_myc, &c.holdings_of(NodeId(0))));
    }

    #[test]
    fn rewrite_is_idempotent_on_local_query() {
        let c = catalog();
        let q = motivating(&c);
        let myconos = c.holdings_of(NodeId(2));
        let rw1 = rewrite_for_holdings(&q, &myconos).unwrap();
        let rw2 = rewrite_for_holdings(&rw1, &myconos).unwrap();
        assert_eq!(rw1, rw2);
    }
}
