//! Parser for the SQL subset used in the examples and tests.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT item (',' item)* FROM name (',' name)*
//!            [WHERE pred (AND pred)*] [GROUP BY col (',' col)*]
//!            [ORDER BY col (',' col)*]
//! item    := AGG '(' ('*' | col) ')' | col
//! pred    := col op (col | literal) | col BETWEEN literal AND literal
//! col     := [name '.'] name
//! op      := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//! literal := integer | float | 'string'
//! ```
//!
//! Unqualified column names are resolved against the `FROM` relations;
//! ambiguity is an error. The parser produces a validated [`Query`].

use crate::predicate::{Col, CompOp, Operand, Predicate};
use crate::query::{AggFunc, Query, SelectItem};
use qt_catalog::{SchemaDict, Value};
use std::fmt;

/// Parse errors with byte offsets into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset of the offending token.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<(Tok, usize), ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((Tok::Eof, start));
        }
        let c = self.src[self.pos];
        if c.is_ascii_alphabetic() || c == b'_' {
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            let word = std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .to_string();
            return Ok((Tok::Ident(word), start));
        }
        if c.is_ascii_digit()
            || (c == b'-' && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit))
        {
            self.pos += 1;
            let mut is_float = false;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
            {
                if self.src[self.pos] == b'.' {
                    if is_float {
                        break;
                    }
                    is_float = true;
                }
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            return if is_float {
                text.parse::<f64>()
                    .map(|v| (Tok::Float(v), start))
                    .map_err(|e| self.err(format!("bad float literal: {e}")))
            } else {
                text.parse::<i64>()
                    .map(|v| (Tok::Int(v), start))
                    .map_err(|e| self.err(format!("bad integer literal: {e}")))
            };
        }
        if c == b'\'' {
            self.pos += 1;
            let s_start = self.pos;
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.pos += 1;
            }
            if self.pos >= self.src.len() {
                return Err(self.err("unterminated string literal"));
            }
            let s = std::str::from_utf8(&self.src[s_start..self.pos])
                .unwrap()
                .to_string();
            self.pos += 1;
            return Ok((Tok::Str(s), start));
        }
        let two = |a: u8, b: u8| -> bool { c == a && self.src.get(self.pos + 1) == Some(&b) };
        for (pat, sym, len) in [
            ((b'<', b'>'), "<>", 2usize),
            ((b'!', b'='), "<>", 2),
            ((b'<', b'='), "<=", 2),
            ((b'>', b'='), ">=", 2),
        ] {
            if two(pat.0, pat.1) {
                self.pos += len;
                return Ok((Tok::Symbol(sym), start));
            }
        }
        let sym = match c {
            b',' => ",",
            b'.' => ".",
            b'(' => "(",
            b')' => ")",
            b'*' => "*",
            b'=' => "=",
            b'<' => "<",
            b'>' => ">",
            _ => return Err(self.err(format!("unexpected character '{}'", c as char))),
        };
        self.pos += 1;
        Ok((Tok::Symbol(sym), start))
    }
}

struct Parser<'a> {
    dict: &'a SchemaDict,
    toks: Vec<(Tok, usize)>,
    i: usize,
    from: Vec<qt_catalog::RelId>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].0
    }

    fn offset(&self) -> usize {
        self.toks[self.i].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].0.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        match self.bump() {
            Tok::Symbol(s) if s == sym => Ok(()),
            other => Err(self.err(format!("expected '{sym}', found {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Tok::Ident(w) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Resolve `[rel.]attr`.
    fn colref(&mut self) -> Result<Col, ParseError> {
        let first = self.ident()?;
        if matches!(self.peek(), Tok::Symbol(".")) {
            self.bump();
            let attr_name = self.ident()?;
            let rel = self
                .dict
                .rel_by_name(&first)
                .ok_or_else(|| self.err(format!("unknown relation '{first}'")))?;
            if !self.from.contains(&rel) {
                return Err(self.err(format!("relation '{first}' not in FROM")));
            }
            let attr = self
                .dict
                .rel(rel)
                .schema
                .attr_index(&attr_name)
                .ok_or_else(|| self.err(format!("unknown column '{first}.{attr_name}'")))?;
            Ok(Col::new(rel, attr))
        } else {
            // Unqualified: search FROM relations.
            let mut found = None;
            for &rel in &self.from {
                if let Some(attr) = self.dict.rel(rel).schema.attr_index(&first) {
                    if found.is_some() {
                        return Err(self.err(format!("ambiguous column '{first}'")));
                    }
                    found = Some(Col::new(rel, attr));
                }
            }
            found.ok_or_else(|| self.err(format!("unknown column '{first}'")))
        }
    }

    fn agg_func(word: &str) -> Option<AggFunc> {
        match word.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if let Tok::Ident(w) = self.peek().clone() {
            if let Some(func) = Self::agg_func(&w) {
                // Lookahead for '(' to distinguish a column named `sum`.
                if matches!(self.toks.get(self.i + 1), Some((Tok::Symbol("("), _))) {
                    self.bump();
                    self.expect_symbol("(")?;
                    let arg = if matches!(self.peek(), Tok::Symbol("*")) {
                        self.bump();
                        None
                    } else {
                        Some(self.colref()?)
                    };
                    self.expect_symbol(")")?;
                    if arg.is_none() && func != AggFunc::Count {
                        return Err(self.err(format!("{func}(*) is not allowed")));
                    }
                    return Ok(SelectItem::Agg { func, arg });
                }
            }
        }
        Ok(SelectItem::Col(self.colref()?))
    }

    fn comp_op(&mut self) -> Result<CompOp, ParseError> {
        match self.bump() {
            Tok::Symbol("=") => Ok(CompOp::Eq),
            Tok::Symbol("<>") => Ok(CompOp::Ne),
            Tok::Symbol("<") => Ok(CompOp::Lt),
            Tok::Symbol("<=") => Ok(CompOp::Le),
            Tok::Symbol(">") => Ok(CompOp::Gt),
            Tok::Symbol(">=") => Ok(CompOp::Ge),
            other => Err(self.err(format!("expected comparison operator, found {other:?}"))),
        }
    }

    /// One predicate, or the two conjuncts a `BETWEEN` desugars into.
    fn predicates(&mut self) -> Result<Vec<Predicate>, ParseError> {
        let left = self.colref()?;
        if self.keyword("BETWEEN") {
            let lo = self.literal()?;
            self.expect_keyword("AND")?;
            let hi = self.literal()?;
            return Ok(vec![
                Predicate {
                    left,
                    op: CompOp::Ge,
                    right: Operand::Const(lo),
                },
                Predicate {
                    left,
                    op: CompOp::Le,
                    right: Operand::Const(hi),
                },
            ]);
        }
        let op = self.comp_op()?;
        let right = match self.peek().clone() {
            Tok::Ident(_) => Operand::Col(self.colref()?),
            _ => Operand::Const(self.literal()?),
        };
        Ok(vec![Predicate { left, op, right }])
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Value::Int(v)),
            Tok::Float(v) => Ok(Value::Float(v)),
            Tok::Str(s) => Ok(Value::str(s)),
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    fn col_list(&mut self) -> Result<Vec<Col>, ParseError> {
        let mut cols = vec![self.colref()?];
        while matches!(self.peek(), Tok::Symbol(",")) {
            self.bump();
            cols.push(self.colref()?);
        }
        Ok(cols)
    }
}

/// Parse `sql` against `dict` into a validated [`Query`] over full extents.
///
/// ```
/// use qt_catalog::{AttrType, CatalogBuilder, NodeId, PartId, Partitioning,
///                  PartitionStats, RelationSchema};
/// use qt_query::parse_query;
///
/// let mut b = CatalogBuilder::new();
/// let r = b.add_relation(
///     RelationSchema::new("orders", vec![("id", AttrType::Int), ("total", AttrType::Float)]),
///     Partitioning::Single,
/// );
/// b.set_stats(PartId::new(r, 0), PartitionStats::synthetic(10, &[10, 10]));
/// b.place(PartId::new(r, 0), NodeId(0));
/// let dict = b.build().dict;
///
/// let q = parse_query(&dict, "SELECT id, SUM(total) FROM orders GROUP BY id").unwrap();
/// assert!(q.is_aggregate());
/// // Display renders back to (equivalent) SQL.
/// assert!(q.display_with(&dict).to_string().contains("SUM(orders.total)"));
/// assert!(parse_query(&dict, "SELECT nope FROM orders").is_err());
/// ```
pub fn parse_query(dict: &SchemaDict, sql: &str) -> Result<Query, ParseError> {
    let mut lexer = Lexer::new(sql);
    let mut toks = Vec::new();
    loop {
        let (t, off) = lexer.next()?;
        let eof = t == Tok::Eof;
        toks.push((t, off));
        if eof {
            break;
        }
    }
    let mut p = Parser {
        dict,
        toks,
        i: 0,
        from: Vec::new(),
    };

    p.expect_keyword("SELECT")?;
    // The SELECT list references FROM relations, so scan ahead to parse FROM
    // first: find the FROM keyword at depth 0.
    let select_start = p.i;
    let mut depth = 0usize;
    let from_idx = loop {
        match &p.toks.get(p.i) {
            Some((Tok::Symbol("("), _)) => depth += 1,
            Some((Tok::Symbol(")"), _)) => depth = depth.saturating_sub(1),
            Some((Tok::Ident(w), _)) if depth == 0 && w.eq_ignore_ascii_case("FROM") => {
                break p.i;
            }
            Some((Tok::Eof, _)) | None => return Err(p.err("missing FROM clause")),
            _ => {}
        }
        p.i += 1;
    };
    p.i = from_idx;
    p.expect_keyword("FROM")?;
    loop {
        let name = p.ident()?;
        let rel = dict
            .rel_by_name(&name)
            .ok_or_else(|| p.err(format!("unknown relation '{name}'")))?;
        if p.from.contains(&rel) {
            return Err(p.err(format!(
                "relation '{name}' listed twice (self-joins unsupported)"
            )));
        }
        p.from.push(rel);
        if matches!(p.peek(), Tok::Symbol(",")) {
            p.bump();
        } else {
            break;
        }
    }
    let after_from = p.i;

    // Now parse the SELECT list with FROM known.
    p.i = select_start;
    let mut select = vec![p.select_item()?];
    while matches!(p.peek(), Tok::Symbol(",")) {
        p.bump();
        select.push(p.select_item()?);
    }
    if p.i != from_idx {
        return Err(p.err("unexpected tokens before FROM"));
    }
    p.i = after_from;

    let mut predicates = Vec::new();
    if p.keyword("WHERE") {
        predicates.extend(p.predicates()?);
        while p.keyword("AND") {
            predicates.extend(p.predicates()?);
        }
    }
    let mut group_by = Vec::new();
    if p.keyword("GROUP") {
        p.expect_keyword("BY")?;
        group_by = p.col_list()?;
    }
    let mut order_by = Vec::new();
    if p.keyword("ORDER") {
        p.expect_keyword("BY")?;
        order_by = p.col_list()?;
    }
    if *p.peek() != Tok::Eof {
        return Err(p.err(format!("trailing tokens: {:?}", p.peek())));
    }

    let q = Query::over_full(dict, p.from.iter().copied())
        .with_predicates(predicates)
        .with_select(select)
        .with_group_by(group_by)
        .with_order_by(order_by);
    q.validate(dict).map_err(|e| ParseError {
        message: e.to_string(),
        offset: 0,
    })?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::tests::telecom_dict;
    use qt_catalog::RelId;

    #[test]
    fn parses_motivating_query() {
        let dict = telecom_dict();
        let q = parse_query(
            &dict,
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
        )
        .unwrap();
        assert_eq!(q.num_relations(), 2);
        assert!(q.is_aggregate());
        assert_eq!(q.group_by, vec![Col::new(RelId(0), 2)]);
        assert_eq!(q.join_predicates().count(), 1);
    }

    #[test]
    fn parses_filters_and_order() {
        let dict = telecom_dict();
        let q = parse_query(
            &dict,
            "SELECT custname FROM customer WHERE office = 'Corfu' AND custid >= 10 \
             ORDER BY custname",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.order_by, vec![Col::new(RelId(0), 1)]);
    }

    #[test]
    fn parses_count_star_and_floats() {
        let dict = telecom_dict();
        let q = parse_query(
            &dict,
            "select count(*) from invoiceline where charge > 99.5",
        )
        .unwrap();
        assert!(q.is_aggregate());
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn rejects_unknowns() {
        let dict = telecom_dict();
        assert!(parse_query(&dict, "SELECT x FROM nosuch").is_err());
        assert!(parse_query(&dict, "SELECT nosuchcol FROM customer").is_err());
        assert!(parse_query(&dict, "SELECT customer.custid FROM invoiceline").is_err());
        // custid is ambiguous across customer and invoiceline.
        assert!(parse_query(&dict, "SELECT custid FROM customer, invoiceline").is_err());
        // Self-join unsupported.
        assert!(parse_query(&dict, "SELECT office FROM customer, customer").is_err());
    }

    #[test]
    fn rejects_bad_syntax() {
        let dict = telecom_dict();
        assert!(parse_query(&dict, "SELECT office customer").is_err());
        assert!(parse_query(&dict, "SELECT office FROM customer WHERE").is_err());
        assert!(parse_query(&dict, "SELECT office FROM customer trailing").is_err());
        assert!(parse_query(&dict, "SELECT SUM(*) FROM customer").is_err());
        assert!(parse_query(&dict, "SELECT office FROM customer WHERE office = 'x").is_err());
    }

    #[test]
    fn qualified_and_unqualified_agree() {
        let dict = telecom_dict();
        let a = parse_query(&dict, "SELECT office FROM customer WHERE office = 'Corfu'").unwrap();
        let b = parse_query(
            &dict,
            "SELECT customer.office FROM customer WHERE customer.office = 'Corfu'",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn between_desugars_to_two_conjuncts() {
        let dict = telecom_dict();
        let a = parse_query(
            &dict,
            "SELECT office FROM customer WHERE custid BETWEEN 5 AND 10",
        )
        .unwrap();
        let b = parse_query(
            &dict,
            "SELECT office FROM customer WHERE custid >= 5 AND custid <= 10",
        )
        .unwrap();
        assert_eq!(a, b);
        assert!(parse_query(&dict, "SELECT office FROM customer WHERE custid BETWEEN 5").is_err());
    }

    #[test]
    fn not_equal_spellings() {
        let dict = telecom_dict();
        let a = parse_query(&dict, "SELECT office FROM customer WHERE custid <> 5").unwrap();
        let b = parse_query(&dict, "SELECT office FROM customer WHERE custid != 5").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn aggregate_named_column_is_not_a_call() {
        // A column named like an aggregate keyword parses as a column when
        // not followed by '('. The telecom dict has no such column, so just
        // check the negative: `sum` alone errors as unknown column.
        let dict = telecom_dict();
        assert!(parse_query(&dict, "SELECT sum FROM customer").is_err());
    }

    #[test]
    fn roundtrip_display_reparses() {
        let dict = telecom_dict();
        let q = parse_query(
            &dict,
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid AND charge > 10.0 GROUP BY office",
        )
        .unwrap();
        let sql = q.display_with(&dict).to_string();
        let q2 = parse_query(&dict, &sql).unwrap();
        assert_eq!(q, q2);
    }
}
