//! The [`Query`] type — the commodity traded by QT.

use crate::partset::PartSet;
use crate::predicate::{Col, Predicate};
use qt_catalog::{RelId, SchemaDict};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Aggregate functions supported in `SELECT` lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(col)` (no `NULL`s in this model, so equivalent).
    Count,
    /// `SUM(col)`
    Sum,
    /// `AVG(col)`
    Avg,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

impl AggFunc {
    /// Can partial aggregates over *disjoint* partitions be re-aggregated
    /// into the global aggregate? (`AVG` cannot without auxiliary columns;
    /// the paper's motivating `SUM` can.)
    pub fn is_decomposable(&self) -> bool {
        !matches!(self, AggFunc::Avg)
    }

    /// The function that re-aggregates partial results of `self`
    /// (`COUNT` partials are *summed*).
    pub fn reaggregate_with(&self) -> AggFunc {
        match self {
            AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
            AggFunc::Min => AggFunc::Min,
            AggFunc::Max => AggFunc::Max,
            AggFunc::Avg => AggFunc::Avg, // not decomposable; callers must check
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One item of a `SELECT` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SelectItem {
    /// A plain column.
    Col(Col),
    /// An aggregate over a column (`None` arg = `COUNT(*)`).
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column; `None` only for `COUNT(*)`.
        arg: Option<Col>,
    },
}

impl SelectItem {
    /// Is this an aggregate item?
    pub fn is_agg(&self) -> bool {
        matches!(self, SelectItem::Agg { .. })
    }

    /// The column mentioned, if any.
    pub fn col(&self) -> Option<Col> {
        match self {
            SelectItem::Col(c) => Some(*c),
            SelectItem::Agg { arg, .. } => *arg,
        }
    }
}

/// Validation errors for [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A column references a relation outside the `FROM` list.
    UnknownRelation(RelId),
    /// A column's attribute index is out of the schema's range.
    BadAttr(Col),
    /// A relation's partition set is empty or mentions partitions the
    /// partitioning scheme does not define.
    BadPartSet(RelId),
    /// A mixed aggregate/plain `SELECT` whose plain columns are not all in
    /// `GROUP BY`.
    UngroupedColumn(Col),
    /// `GROUP BY` given without any aggregate item.
    GroupByWithoutAggregate,
    /// `ORDER BY` on an aggregate query (unsupported in this model).
    OrderByOnAggregate,
    /// Empty `SELECT` list.
    EmptySelect,
    /// Empty `FROM` list.
    EmptyFrom,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownRelation(r) => write!(f, "column references {r} not in FROM"),
            QueryError::BadAttr(c) => write!(f, "attribute {} out of range for {}", c.attr, c.rel),
            QueryError::BadPartSet(r) => write!(f, "invalid partition set for {r}"),
            QueryError::UngroupedColumn(c) => {
                write!(f, "column {:?} not in GROUP BY", c)
            }
            QueryError::GroupByWithoutAggregate => write!(f, "GROUP BY without aggregates"),
            QueryError::OrderByOnAggregate => write!(f, "ORDER BY unsupported on aggregates"),
            QueryError::EmptySelect => write!(f, "empty SELECT list"),
            QueryError::EmptyFrom => write!(f, "empty FROM list"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A select-project-join query with optional aggregation, over explicit
/// partition subsets of its relations.
///
/// `Query` is a *value* type with structural equality and hashing over its
/// canonical form — queries are deduplicated, keyed, and compared all over
/// the trading loop. Always construct via [`Query::new`] + setters or the SQL
/// parser, then treat as immutable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Query {
    /// `FROM`: each relation with the partition subset the query ranges
    /// over. [`PartSet::all`] = the full extent.
    pub relations: BTreeMap<RelId, PartSet>,
    /// Conjunctive `WHERE` clause, kept canonical (sorted, deduplicated,
    /// canonical predicate forms).
    pub predicates: Vec<Predicate>,
    /// `SELECT` list.
    pub select: Vec<SelectItem>,
    /// `GROUP BY` columns (only with aggregate select items).
    pub group_by: Vec<Col>,
    /// `ORDER BY` columns (non-aggregate queries only).
    pub order_by: Vec<Col>,
}

impl Query {
    /// A query over `relations` (full extents), selecting everything the
    /// caller adds later. Prefer the setter chain:
    /// `Query::new(...).with_select(...).with_predicates(...)`.
    pub fn new(relations: impl IntoIterator<Item = (RelId, PartSet)>) -> Query {
        Query {
            relations: relations.into_iter().collect(),
            predicates: Vec::new(),
            select: Vec::new(),
            group_by: Vec::new(),
            order_by: Vec::new(),
        }
    }

    /// A query over the full extents of `rels` as defined in `dict`.
    pub fn over_full(dict: &SchemaDict, rels: impl IntoIterator<Item = RelId>) -> Query {
        Query::new(rels.into_iter().map(|r| {
            let n = dict.rel(r).partitioning.num_partitions();
            (r, PartSet::all(n))
        }))
    }

    /// Replace the `SELECT` list.
    pub fn with_select(mut self, select: Vec<SelectItem>) -> Query {
        self.select = select;
        self
    }

    /// Replace the predicates (canonicalized).
    pub fn with_predicates(mut self, preds: Vec<Predicate>) -> Query {
        self.predicates = preds;
        self.canonicalize();
        self
    }

    /// Replace `GROUP BY`.
    pub fn with_group_by(mut self, cols: Vec<Col>) -> Query {
        self.group_by = cols;
        self
    }

    /// Replace `ORDER BY`.
    pub fn with_order_by(mut self, cols: Vec<Col>) -> Query {
        self.order_by = cols;
        self
    }

    /// Sort/dedup predicates and put each in canonical form. Equality and
    /// hashing assume this has run (all constructors call it).
    pub fn canonicalize(&mut self) {
        for p in &mut self.predicates {
            *p = p.clone().canonical();
        }
        self.predicates.sort();
        self.predicates.dedup();
    }

    /// A 64-bit fingerprint of the canonical query structure: FNV-1a over the
    /// `Hash` feed, independent of `RandomState` so equal queries map to the
    /// same key in every hasher, process-wide. The trading layer keys seller
    /// offer caches and buyer value books on it.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = Fnv1a::default();
        self.hash(&mut h);
        h.finish()
    }

    /// The relations in `FROM`.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        self.relations.keys().copied()
    }

    /// Number of relations in `FROM`.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Join predicates only.
    pub fn join_predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_join())
    }

    /// Selection predicates on relation `rel` only.
    pub fn selections_of(&self, rel: RelId) -> impl Iterator<Item = &Predicate> {
        self.predicates
            .iter()
            .filter(move |p| p.is_selection() && p.left.rel == rel)
    }

    /// Does the query contain any aggregate select item?
    pub fn is_aggregate(&self) -> bool {
        self.select.iter().any(SelectItem::is_agg)
    }

    /// Are all aggregates decomposable over disjoint partition unions?
    pub fn aggregates_decomposable(&self) -> bool {
        self.select.iter().all(|s| match s {
            SelectItem::Agg { func, .. } => func.is_decomposable(),
            SelectItem::Col(_) => true,
        })
    }

    /// All columns the query mentions anywhere.
    pub fn all_cols(&self) -> BTreeSet<Col> {
        let mut cols = BTreeSet::new();
        for s in &self.select {
            if let Some(c) = s.col() {
                cols.insert(c);
            }
        }
        for p in &self.predicates {
            cols.extend(p.cols());
        }
        cols.extend(self.group_by.iter().copied());
        cols.extend(self.order_by.iter().copied());
        cols
    }

    /// Columns of `rel` that any *other* part of the query needs if `rel` is
    /// computed separately: select outputs, group-by keys, and columns in
    /// predicates touching `rel`.
    pub fn needed_cols_of(&self, rel: RelId) -> BTreeSet<Col> {
        self.all_cols()
            .into_iter()
            .filter(|c| c.rel == rel)
            .collect()
    }

    /// The SPJ core of an aggregate query: same `FROM`/`WHERE`, selecting the
    /// group-by keys and aggregate arguments as plain columns. Non-aggregate
    /// queries are returned unchanged (minus `ORDER BY`).
    pub fn strip_aggregation(&self) -> Query {
        let mut cols: Vec<Col> = Vec::new();
        for c in self
            .group_by
            .iter()
            .copied()
            .chain(self.select.iter().filter_map(|s| s.col()))
        {
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        if cols.is_empty() {
            // COUNT(*) with no group-by: any column will do for counting; use
            // the first attribute of the first relation.
            let rel = *self.relations.keys().next().expect("query has relations");
            cols.push(Col::new(rel, 0));
        }
        Query {
            relations: self.relations.clone(),
            predicates: self.predicates.clone(),
            select: cols.into_iter().map(SelectItem::Col).collect(),
            group_by: Vec::new(),
            order_by: Vec::new(),
        }
    }

    /// Restrict the query to the sub-join over `rels` ⊆ `FROM`: keeps the
    /// relations (with their partition subsets), the predicates entirely over
    /// `rels`, and selects every column of `rels` the full query needs
    /// (including join columns to the dropped relations). Aggregation is
    /// stripped — partial results are plain row sets.
    ///
    /// This is the building block of both the seller's rewrite (§3.4) and the
    /// modified-DP partial offers.
    pub fn restrict_to_rels(&self, rels: &BTreeSet<RelId>) -> Query {
        let relations: BTreeMap<RelId, PartSet> = self
            .relations
            .iter()
            .filter(|(r, _)| rels.contains(r))
            .map(|(r, p)| (*r, *p))
            .collect();
        let predicates: Vec<Predicate> = self
            .predicates
            .iter()
            .filter(|p| p.rels().iter().all(|r| relations.contains_key(r)))
            .cloned()
            .collect();
        let select: Vec<SelectItem> = relations
            .keys()
            .flat_map(|r| self.needed_cols_of(*r))
            .map(SelectItem::Col)
            .collect();
        let mut q = Query {
            relations,
            predicates,
            select,
            group_by: Vec::new(),
            order_by: Vec::new(),
        };
        if q.select.is_empty() {
            // Nothing upstream needs a column (e.g. COUNT(*) query): keep the
            // first attribute of each relation so the sub-result is well-formed.
            q.select = q
                .relations
                .keys()
                .map(|r| SelectItem::Col(Col::new(*r, 0)))
                .collect();
        }
        q.canonicalize();
        q
    }

    /// Same query with the partition set of `rel` replaced.
    pub fn with_partset(&self, rel: RelId, parts: PartSet) -> Query {
        let mut q = self.clone();
        q.relations.insert(rel, parts);
        q
    }

    /// Validate against the dictionary. Every constructor path in examples,
    /// the parser, and the trading loop calls this before a query crosses a
    /// module boundary.
    pub fn validate(&self, dict: &SchemaDict) -> Result<(), QueryError> {
        if self.relations.is_empty() {
            return Err(QueryError::EmptyFrom);
        }
        if self.select.is_empty() {
            return Err(QueryError::EmptySelect);
        }
        for (&rel, parts) in &self.relations {
            let n = dict.rel(rel).partitioning.num_partitions();
            if parts.is_empty() || !parts.is_subset(&PartSet::all(n)) {
                return Err(QueryError::BadPartSet(rel));
            }
        }
        for c in self.all_cols() {
            let Some(parts) = self.relations.get(&c.rel) else {
                return Err(QueryError::UnknownRelation(c.rel));
            };
            let _ = parts;
            if c.attr >= dict.rel(c.rel).schema.arity() {
                return Err(QueryError::BadAttr(c));
            }
        }
        let has_agg = self.is_aggregate();
        if has_agg {
            for s in &self.select {
                if let SelectItem::Col(c) = s {
                    if !self.group_by.contains(c) {
                        return Err(QueryError::UngroupedColumn(*c));
                    }
                }
            }
            if !self.order_by.is_empty() {
                return Err(QueryError::OrderByOnAggregate);
            }
        } else if !self.group_by.is_empty() {
            return Err(QueryError::GroupByWithoutAggregate);
        }
        Ok(())
    }

    /// Does the query range over the full extent of every relation?
    pub fn covers_full_extents(&self, dict: &SchemaDict) -> bool {
        self.relations.iter().all(|(&rel, parts)| {
            *parts == PartSet::all(dict.rel(rel).partitioning.num_partitions())
        })
    }

    /// Render as SQL. Partition subsets are rendered as the disjunction of
    /// the member partitions' restrictions — exactly the predicates the
    /// paper's rewrite appends (`office = 'Myconos'`).
    pub fn display_with<'a>(&'a self, dict: &'a SchemaDict) -> QueryDisplay<'a> {
        QueryDisplay { q: self, dict }
    }
}

/// FNV-1a, the keyed-nowhere hasher behind [`Query::fingerprint`]. Unlike
/// `DefaultHasher`, its output has no per-process random seed, so fingerprints
/// are reproducible across threads and runs of the same build.
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Display adapter produced by [`Query::display_with`].
pub struct QueryDisplay<'a> {
    q: &'a Query,
    dict: &'a SchemaDict,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dict = self.dict;
        write!(f, "SELECT ")?;
        for (i, s) in self.q.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match s {
                SelectItem::Col(c) => write!(f, "{}", c.display_with(dict))?,
                SelectItem::Agg { func, arg: Some(c) } => {
                    write!(f, "{func}({})", c.display_with(dict))?
                }
                SelectItem::Agg { func, arg: None } => write!(f, "{func}(*)")?,
            }
        }
        write!(f, " FROM ")?;
        for (i, rel) in self.q.rel_ids().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", dict.rel(rel).schema.name)?;
        }
        let mut wrote_where = false;
        let sep = |f: &mut fmt::Formatter<'_>, wrote: &mut bool| -> fmt::Result {
            if *wrote {
                write!(f, " AND ")
            } else {
                *wrote = true;
                write!(f, " WHERE ")
            }
        };
        for p in &self.q.predicates {
            sep(f, &mut wrote_where)?;
            write!(f, "{}", p.display_with(dict))?;
        }
        for (&rel, parts) in &self.q.relations {
            let meta = dict.rel(rel);
            let total = meta.partitioning.num_partitions();
            if *parts == PartSet::all(total) {
                continue;
            }
            sep(f, &mut wrote_where)?;
            if parts.len() > 1 {
                write!(f, "(")?;
            }
            for (i, idx) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " OR ")?;
                }
                let r = meta.partitioning.restriction(idx);
                write!(f, "{}", r.display_with(&meta.schema))?;
            }
            if parts.len() > 1 {
                write!(f, ")")?;
            }
        }
        if !self.q.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.q.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", c.display_with(dict))?;
            }
        }
        if !self.q.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, c) in self.q.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", c.display_with(dict))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::predicate::CompOp;
    use qt_catalog::{
        AttrType, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning, RelationSchema,
        Value,
    };

    /// customer(custid, custname, office) list-partitioned on office;
    /// invoiceline(invid, linenum, custid, charge) unpartitioned.
    pub(crate) fn telecom_dict() -> std::sync::Arc<SchemaDict> {
        let mut b = CatalogBuilder::new();
        let cust = b.add_relation(
            RelationSchema::new(
                "customer",
                vec![
                    ("custid", AttrType::Int),
                    ("custname", AttrType::Str),
                    ("office", AttrType::Str),
                ],
            ),
            Partitioning::List {
                attr: 2,
                groups: vec![
                    vec![Value::str("Athens")],
                    vec![Value::str("Corfu")],
                    vec![Value::str("Myconos")],
                ],
            },
        );
        let inv = b.add_relation(
            RelationSchema::new(
                "invoiceline",
                vec![
                    ("invid", AttrType::Int),
                    ("linenum", AttrType::Int),
                    ("custid", AttrType::Int),
                    ("charge", AttrType::Float),
                ],
            ),
            Partitioning::Single,
        );
        for i in 0..3 {
            b.set_stats(
                PartId::new(cust, i),
                PartitionStats::synthetic(1000, &[1000, 900, 1]),
            );
            b.place(PartId::new(cust, i), NodeId(i as u32));
        }
        b.set_stats(
            PartId::new(inv, 0),
            PartitionStats::synthetic(10000, &[2000, 5, 3000, 500]),
        );
        b.place(PartId::new(inv, 0), NodeId(0));
        b.build().dict
    }

    fn cust() -> RelId {
        RelId(0)
    }
    fn inv() -> RelId {
        RelId(1)
    }

    /// SELECT office, SUM(charge) FROM customer, invoiceline
    /// WHERE customer.custid = invoiceline.custid AND office IN (...) GROUP BY office
    pub(crate) fn motivating_query(dict: &SchemaDict) -> Query {
        Query::over_full(dict, [cust(), inv()])
            .with_predicates(vec![Predicate::eq_cols(
                Col::new(cust(), 0),
                Col::new(inv(), 2),
            )])
            .with_select(vec![
                SelectItem::Col(Col::new(cust(), 2)),
                SelectItem::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Col::new(inv(), 3)),
                },
            ])
            .with_group_by(vec![Col::new(cust(), 2)])
            .with_partset(cust(), PartSet::from_indices([1, 2])) // Corfu, Myconos
    }

    #[test]
    fn validates_motivating_query() {
        let dict = telecom_dict();
        let q = motivating_query(&dict);
        q.validate(&dict).unwrap();
        assert!(q.is_aggregate());
        assert!(q.aggregates_decomposable());
        assert!(!q.covers_full_extents(&dict));
    }

    #[test]
    fn sql_rendering_includes_partition_restrictions() {
        let dict = telecom_dict();
        let q = motivating_query(&dict);
        let sql = q.display_with(&dict).to_string();
        assert!(
            sql.starts_with("SELECT customer.office, SUM(invoiceline.charge) FROM"),
            "{sql}"
        );
        assert!(
            sql.contains("customer.custid = invoiceline.custid"),
            "{sql}"
        );
        assert!(
            sql.contains("office = 'Corfu' OR office = 'Myconos'"),
            "{sql}"
        );
        assert!(sql.ends_with("GROUP BY customer.office"), "{sql}");
    }

    #[test]
    fn strip_aggregation_keeps_keys_and_args() {
        let dict = telecom_dict();
        let q = motivating_query(&dict).strip_aggregation();
        q.validate(&dict).unwrap();
        assert!(!q.is_aggregate());
        assert_eq!(
            q.select,
            vec![
                SelectItem::Col(Col::new(cust(), 2)),
                SelectItem::Col(Col::new(inv(), 3)),
            ]
        );
    }

    #[test]
    fn restrict_to_rels_keeps_join_columns() {
        let dict = telecom_dict();
        let q = motivating_query(&dict);
        let only_inv = q.restrict_to_rels(&BTreeSet::from([inv()]));
        only_inv.validate(&dict).unwrap();
        // Must output the join column custid and the aggregate arg charge.
        let cols: BTreeSet<Col> = only_inv.select.iter().filter_map(|s| s.col()).collect();
        assert!(cols.contains(&Col::new(inv(), 2)), "join col kept");
        assert!(cols.contains(&Col::new(inv(), 3)), "agg arg kept");
        // The cross-relation join predicate is gone.
        assert_eq!(only_inv.predicates.len(), 0);
        assert_eq!(only_inv.num_relations(), 1);
    }

    #[test]
    fn validation_rejects_bad_queries() {
        let dict = telecom_dict();
        // Column outside FROM.
        let q = Query::over_full(&dict, [cust()])
            .with_select(vec![SelectItem::Col(Col::new(inv(), 0))]);
        assert_eq!(q.validate(&dict), Err(QueryError::UnknownRelation(inv())));
        // Bad attribute index.
        let q = Query::over_full(&dict, [cust()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 99))]);
        assert_eq!(
            q.validate(&dict),
            Err(QueryError::BadAttr(Col::new(cust(), 99)))
        );
        // Ungrouped plain column next to an aggregate.
        let q = Query::over_full(&dict, [cust()]).with_select(vec![
            SelectItem::Col(Col::new(cust(), 0)),
            SelectItem::Agg {
                func: AggFunc::Count,
                arg: None,
            },
        ]);
        assert_eq!(
            q.validate(&dict),
            Err(QueryError::UngroupedColumn(Col::new(cust(), 0)))
        );
        // Empty partition set.
        let q = Query::new([(cust(), PartSet::EMPTY)])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 0))]);
        assert_eq!(q.validate(&dict), Err(QueryError::BadPartSet(cust())));
        // Empty FROM / SELECT.
        let q = Query::new([]).with_select(vec![]);
        assert_eq!(q.validate(&dict), Err(QueryError::EmptyFrom));
        let q = Query::over_full(&dict, [cust()]);
        assert_eq!(q.validate(&dict), Err(QueryError::EmptySelect));
    }

    #[test]
    fn canonical_queries_compare_equal() {
        let dict = telecom_dict();
        let p1 = Predicate::eq_cols(Col::new(cust(), 0), Col::new(inv(), 2));
        let p2 = Predicate::eq_cols(Col::new(inv(), 2), Col::new(cust(), 0));
        let sel = vec![SelectItem::Col(Col::new(cust(), 1))];
        let a = Query::over_full(&dict, [cust(), inv()])
            .with_predicates(vec![p1.clone(), p2.clone()])
            .with_select(sel.clone());
        let b = Query::over_full(&dict, [cust(), inv()])
            .with_predicates(vec![p2])
            .with_select(sel);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |q: &Query| {
            let mut s = DefaultHasher::new();
            q.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn fingerprint_tracks_structural_equality() {
        let dict = telecom_dict();
        let q = motivating_query(&dict);
        assert_eq!(q.fingerprint(), q.clone().fingerprint());
        // Commuted predicate canonicalizes to the same fingerprint.
        let p1 = Predicate::eq_cols(Col::new(cust(), 0), Col::new(inv(), 2));
        let p2 = Predicate::eq_cols(Col::new(inv(), 2), Col::new(cust(), 0));
        let sel = vec![SelectItem::Col(Col::new(cust(), 1))];
        let a = Query::over_full(&dict, [cust(), inv()])
            .with_predicates(vec![p1])
            .with_select(sel.clone());
        let b = Query::over_full(&dict, [cust(), inv()])
            .with_predicates(vec![p2])
            .with_select(sel);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any structural difference moves the fingerprint.
        assert_ne!(
            q.fingerprint(),
            q.with_partset(cust(), PartSet::single(1)).fingerprint()
        );
        assert_ne!(a.fingerprint(), q.fingerprint());
    }

    #[test]
    fn count_star_strip_produces_some_column() {
        let dict = telecom_dict();
        let q = Query::over_full(&dict, [cust()]).with_select(vec![SelectItem::Agg {
            func: AggFunc::Count,
            arg: None,
        }]);
        q.validate(&dict).unwrap();
        let core = q.strip_aggregation();
        core.validate(&dict).unwrap();
        assert_eq!(core.select.len(), 1);
    }

    #[test]
    fn avg_blocks_decomposability() {
        let dict = telecom_dict();
        let q = Query::over_full(&dict, [inv()]).with_select(vec![SelectItem::Agg {
            func: AggFunc::Avg,
            arg: Some(Col::new(inv(), 3)),
        }]);
        assert!(!q.aggregates_decomposable());
        assert!(AggFunc::Sum.is_decomposable());
        assert_eq!(AggFunc::Count.reaggregate_with(), AggFunc::Sum);
    }

    #[test]
    fn selections_of_filters_by_relation() {
        let dict = telecom_dict();
        let q = Query::over_full(&dict, [cust(), inv()])
            .with_predicates(vec![
                Predicate::eq_cols(Col::new(cust(), 0), Col::new(inv(), 2)),
                Predicate::with_const(Col::new(inv(), 3), CompOp::Gt, 100.0),
            ])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 1))]);
        assert_eq!(q.selections_of(inv()).count(), 1);
        assert_eq!(q.selections_of(cust()).count(), 0);
        assert_eq!(q.join_predicates().count(), 1);
    }
}
