//! Materialized views and the matching used by the seller predicates
//! analyser (§3.5).
//!
//! A seller holding a materialized view that subsumes (part of) a requested
//! query can offer the view's contents cheaply — "it is worth offering (in
//! small value) the contents of this materialized view to the buyer". The
//! matcher answers: *can `query` be computed from `view` by further
//! selection, projection, and (re-)aggregation?*

use crate::contain::{implies, implies_all};
use crate::predicate::{Col, Predicate};
use crate::query::{Query, SelectItem};
use std::collections::BTreeSet;
use std::fmt;

/// A named materialized view: a query whose result a node keeps materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedView {
    /// View name, unique per node.
    pub name: String,
    /// The defining query.
    pub query: Query,
}

impl MaterializedView {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, query: Query) -> Self {
        MaterializedView {
            name: name.into(),
            query,
        }
    }
}

/// A successful view match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewMatch {
    /// Selection predicates that must still be applied on top of the view's
    /// rows (those of the query not already enforced by the view).
    pub residual_predicates: Vec<Predicate>,
    /// Whether the query needs re-aggregation of the view's (finer) groups.
    pub needs_reaggregation: bool,
    /// `true` when the view rows are exactly the query's answer — same
    /// output list and row order, no residual work at all. Consumers may
    /// reuse the rows verbatim; anything less needs a compensation step.
    pub exact: bool,
}

impl fmt::Display for ViewMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ViewMatch(residuals={}, reagg={}, exact={})",
            self.residual_predicates.len(),
            self.needs_reaggregation,
            self.exact
        )
    }
}

/// Try to answer `query` from `view`.
///
/// Sound but incomplete (like all practical view matchers): a `Some` result
/// is always a valid rewriting; `None` means "no rewriting found".
///
/// Supported cases:
///
/// 1. **SPJ from SPJ**: same relation sets and partition subsets, the view's
///    predicates implied by the query's (view weaker ⇒ superset), and the
///    view outputs every column the query needs. Residual = query predicates
///    not implied by the view's.
/// 2. **Aggregate from SPJ**: as above, plus the query's group-by keys and
///    aggregate arguments all present in the view output.
/// 3. **Aggregate from finer aggregate** (the paper's §3.5 example: a view
///    grouped by `(office, custid)` answering a query grouped by `office`):
///    mutually-implied predicates, query group-by ⊆ view group-by, and every
///    query aggregate present in the view with a decomposable function.
pub fn match_view(view: &Query, query: &Query) -> Option<ViewMatch> {
    // FROM must agree exactly (same relations, same partition subsets):
    // a view over *fewer* partitions can't produce the missing rows, and one
    // over *more* would need partition-level filtering we don't attempt.
    if view.relations != query.relations {
        return None;
    }

    let view_cols: BTreeSet<Col> = view.select.iter().filter_map(|s| s.col()).collect();

    if !view.is_aggregate() {
        // Cases 1 and 2: the view is a superset of the query's SPJ core iff
        // the view's predicates are implied by the query's.
        if !implies_all(&query.predicates, &view.predicates) {
            return None;
        }
        let residual: Vec<Predicate> = query
            .predicates
            .iter()
            .filter(|p| !implies(&view.predicates, p))
            .cloned()
            .collect();
        // Residual predicates are applied on view *rows*, so every column
        // they mention must be in the view output, as must every column the
        // query's own outputs need.
        let needed: BTreeSet<Col> = query
            .all_cols()
            .into_iter()
            .filter(|c| {
                // Columns used only by non-residual (already enforced)
                // predicates need not be present.
                query.select.iter().any(|s| s.col() == Some(*c))
                    || query.group_by.contains(c)
                    || query.order_by.contains(c)
                    || residual.iter().any(|p| p.cols().contains(c))
            })
            .collect();
        if !needed.is_subset(&view_cols) {
            return None;
        }
        // `exact` promises the view rows *are* the answer, so beyond residual
        // emptiness it needs the same output list (width and order) and the
        // same row order — a reordered/narrowed projection or a differing
        // ORDER BY is still a match, just not an exact one.
        let exact = residual.is_empty()
            && !query.is_aggregate()
            && view.select == query.select
            && view.order_by == query.order_by;
        return Some(ViewMatch {
            residual_predicates: residual,
            needs_reaggregation: query.is_aggregate(),
            exact,
        });
    }

    // Case 3: aggregate view. Require mutually-implied predicates (equal
    // logical selections) — a weaker view would have aggregated-in rows we
    // cannot subtract out.
    if !query.is_aggregate()
        || !implies_all(&query.predicates, &view.predicates)
        || !implies_all(&view.predicates, &query.predicates)
    {
        return None;
    }
    // Query group-by must be a subset of the view's (coarser grouping), and
    // every group key must actually be *output* by the view — grouping on a
    // column the view grouped by but projected away is impossible.
    let view_groups: BTreeSet<Col> = view.group_by.iter().copied().collect();
    if !query
        .group_by
        .iter()
        .all(|c| view_groups.contains(c) && view.select.contains(&SelectItem::Col(*c)))
    {
        return None;
    }
    // Every query aggregate must be present in the view and decomposable;
    // plain query outputs must be view group-by keys present in the view's
    // own output (group-key membership alone doesn't put them in the rows).
    for item in &query.select {
        match item {
            SelectItem::Col(c) => {
                if !view_groups.contains(c) || !view.select.contains(&SelectItem::Col(*c)) {
                    return None;
                }
            }
            SelectItem::Agg { func, arg } => {
                if !func.is_decomposable() {
                    return None;
                }
                if !view.select.contains(&SelectItem::Agg {
                    func: *func,
                    arg: *arg,
                }) {
                    return None;
                }
            }
        }
    }
    // Same grouping cardinality ⇒ identical groups (query keys ⊆ view keys
    // with equal counts), so no re-aggregation; but rows are only *exactly*
    // the answer when the output lists agree too (aggregate queries carry no
    // ORDER BY, so the select list is the whole story).
    let same_groups = view.group_by.len() == query.group_by.len();
    Some(ViewMatch {
        residual_predicates: Vec::new(),
        needs_reaggregation: !same_groups,
        exact: same_groups && view.select == query.select,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompOp;
    use crate::query::tests::telecom_dict;
    use crate::query::AggFunc;
    use qt_catalog::RelId;

    fn cust() -> RelId {
        RelId(0)
    }
    fn inv() -> RelId {
        RelId(1)
    }

    fn dict() -> std::sync::Arc<qt_catalog::SchemaDict> {
        telecom_dict()
    }

    fn join_pred() -> Predicate {
        Predicate::eq_cols(Col::new(cust(), 0), Col::new(inv(), 2))
    }

    #[test]
    fn spj_view_answers_restricted_query() {
        let d = dict();
        let view = Query::over_full(&d, [cust()]).with_select(vec![
            SelectItem::Col(Col::new(cust(), 0)),
            SelectItem::Col(Col::new(cust(), 1)),
            SelectItem::Col(Col::new(cust(), 2)),
        ]);
        let query = Query::over_full(&d, [cust()])
            .with_predicates(vec![Predicate::with_const(
                Col::new(cust(), 0),
                CompOp::Gt,
                10i64,
            )])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 1))]);
        let m = match_view(&view, &query).unwrap();
        assert_eq!(m.residual_predicates.len(), 1);
        assert!(!m.exact);
        assert!(!m.needs_reaggregation);
    }

    #[test]
    fn view_missing_needed_column_fails() {
        let d = dict();
        let view =
            Query::over_full(&d, [cust()]).with_select(vec![SelectItem::Col(Col::new(cust(), 1))]);
        let query =
            Query::over_full(&d, [cust()]).with_select(vec![SelectItem::Col(Col::new(cust(), 2))]);
        assert!(match_view(&view, &query).is_none());
    }

    #[test]
    fn view_with_stronger_predicates_fails() {
        let d = dict();
        let view = Query::over_full(&d, [cust()])
            .with_predicates(vec![Predicate::with_const(
                Col::new(cust(), 0),
                CompOp::Gt,
                10i64,
            )])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 1))]);
        let query =
            Query::over_full(&d, [cust()]).with_select(vec![SelectItem::Col(Col::new(cust(), 1))]);
        assert!(match_view(&view, &query).is_none());
    }

    #[test]
    fn exact_match_is_exact() {
        let d = dict();
        let q = Query::over_full(&d, [cust()])
            .with_predicates(vec![Predicate::with_const(
                Col::new(cust(), 0),
                CompOp::Gt,
                10i64,
            )])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 1))]);
        let m = match_view(&q, &q).unwrap();
        assert!(m.exact);
        assert!(m.residual_predicates.is_empty());
    }

    #[test]
    fn paper_finer_aggregate_view_matches_coarser_query() {
        // View: SELECT office, custid-ish grouping with SUM(charge)
        // grouped by (office, custname); query groups by office only.
        let d = dict();
        let sum = SelectItem::Agg {
            func: AggFunc::Sum,
            arg: Some(Col::new(inv(), 3)),
        };
        let view = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![
                SelectItem::Col(Col::new(cust(), 2)),
                SelectItem::Col(Col::new(cust(), 1)),
                sum,
            ])
            .with_group_by(vec![Col::new(cust(), 2), Col::new(cust(), 1)]);
        let query = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 2)), sum])
            .with_group_by(vec![Col::new(cust(), 2)]);
        let m = match_view(&view, &query).unwrap();
        assert!(m.needs_reaggregation);
        assert!(!m.exact);
    }

    #[test]
    fn coarser_view_cannot_answer_finer_query() {
        let d = dict();
        let sum = SelectItem::Agg {
            func: AggFunc::Sum,
            arg: Some(Col::new(inv(), 3)),
        };
        let view = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 2)), sum])
            .with_group_by(vec![Col::new(cust(), 2)]);
        let query = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![
                SelectItem::Col(Col::new(cust(), 2)),
                SelectItem::Col(Col::new(cust(), 1)),
                sum,
            ])
            .with_group_by(vec![Col::new(cust(), 2), Col::new(cust(), 1)]);
        assert!(match_view(&view, &query).is_none());
    }

    #[test]
    fn avg_is_not_derivable_from_finer_groups() {
        let d = dict();
        let avg = SelectItem::Agg {
            func: AggFunc::Avg,
            arg: Some(Col::new(inv(), 3)),
        };
        let view = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![
                SelectItem::Col(Col::new(cust(), 2)),
                SelectItem::Col(Col::new(cust(), 1)),
                avg,
            ])
            .with_group_by(vec![Col::new(cust(), 2), Col::new(cust(), 1)]);
        let query = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 2)), avg])
            .with_group_by(vec![Col::new(cust(), 2)]);
        assert!(match_view(&view, &query).is_none());
    }

    #[test]
    fn different_partition_sets_fail() {
        let d = dict();
        let view = Query::over_full(&d, [cust()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 1))])
            .with_partset(cust(), crate::partset::PartSet::single(0));
        let query =
            Query::over_full(&d, [cust()]).with_select(vec![SelectItem::Col(Col::new(cust(), 1))]);
        assert!(match_view(&view, &query).is_none());
    }

    #[test]
    fn projected_away_group_key_is_rejected() {
        // View groups by (office, custname) but outputs only (office, SUM):
        // a query selecting custname cannot be answered — custname is not in
        // the view's rows even though it is among its group keys.
        let d = dict();
        let sum = SelectItem::Agg {
            func: AggFunc::Sum,
            arg: Some(Col::new(inv(), 3)),
        };
        let view = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 2)), sum])
            .with_group_by(vec![Col::new(cust(), 2), Col::new(cust(), 1)]);
        let query = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 1)), sum])
            .with_group_by(vec![Col::new(cust(), 1)]);
        assert!(match_view(&view, &query).is_none());
        // Same hole through GROUP BY: grouping by the projected-away key is
        // equally impossible even when the output columns are available.
        let query = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 2)), sum])
            .with_group_by(vec![Col::new(cust(), 2), Col::new(cust(), 1)]);
        assert!(match_view(&view, &query).is_none());
    }

    #[test]
    fn differing_order_by_is_a_match_but_not_exact() {
        let d = dict();
        let sel = vec![SelectItem::Col(Col::new(cust(), 1))];
        let view = Query::over_full(&d, [cust()]).with_select(sel.clone());
        let query = Query::over_full(&d, [cust()])
            .with_select(sel)
            .with_order_by(vec![Col::new(cust(), 1)]);
        let m = match_view(&view, &query).unwrap();
        assert!(!m.exact, "unordered view rows are not the ordered answer");
        assert!(m.residual_predicates.is_empty());
        // And the reverse: an ordered view answering an unordered query is a
        // valid (order-insensitive) match but not certified row-exact.
        let m = match_view(&query, &view.clone()).unwrap();
        assert!(!m.exact);
    }

    #[test]
    fn reordered_projection_is_not_exact() {
        let d = dict();
        let view = Query::over_full(&d, [cust()]).with_select(vec![
            SelectItem::Col(Col::new(cust(), 1)),
            SelectItem::Col(Col::new(cust(), 2)),
        ]);
        let query = Query::over_full(&d, [cust()]).with_select(vec![
            SelectItem::Col(Col::new(cust(), 2)),
            SelectItem::Col(Col::new(cust(), 1)),
        ]);
        let m = match_view(&view, &query).unwrap();
        assert!(!m.exact, "column order differs; rows are not verbatim");
        assert!(!m.needs_reaggregation);
    }

    #[test]
    fn same_groups_different_select_matches_without_reaggregation() {
        let d = dict();
        let sum = SelectItem::Agg {
            func: AggFunc::Sum,
            arg: Some(Col::new(inv(), 3)),
        };
        let cnt = SelectItem::Agg {
            func: AggFunc::Count,
            arg: None,
        };
        let view = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 2)), sum, cnt])
            .with_group_by(vec![Col::new(cust(), 2)]);
        let query = Query::over_full(&d, [cust(), inv()])
            .with_predicates(vec![join_pred()])
            .with_select(vec![SelectItem::Col(Col::new(cust(), 2)), sum])
            .with_group_by(vec![Col::new(cust(), 2)]);
        let m = match_view(&view, &query).unwrap();
        assert!(!m.needs_reaggregation, "identical groups need no re-agg");
        assert!(!m.exact, "narrower projection is compensation work");
    }

    #[test]
    fn aggregate_view_for_spj_query_fails() {
        let d = dict();
        let view = Query::over_full(&d, [cust()])
            .with_select(vec![
                SelectItem::Col(Col::new(cust(), 2)),
                SelectItem::Agg {
                    func: AggFunc::Count,
                    arg: None,
                },
            ])
            .with_group_by(vec![Col::new(cust(), 2)]);
        let query =
            Query::over_full(&d, [cust()]).with_select(vec![SelectItem::Col(Col::new(cust(), 2))]);
        assert!(match_view(&view, &query).is_none());
    }
}
