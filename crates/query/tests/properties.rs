//! Property-based tests for the query algebra.

use proptest::prelude::*;
use qt_catalog::{
    AttrType, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning, RelId, RelationSchema,
    SchemaDict, Value,
};
use qt_query::{
    contain::simplify, implies, parse_query, Col, CompOp, PartSet, Predicate, Query, SelectItem,
};
use std::sync::Arc;

fn dict() -> Arc<SchemaDict> {
    let mut b = CatalogBuilder::new();
    let r = b.add_relation(
        RelationSchema::new(
            "r",
            vec![
                ("a", AttrType::Int),
                ("b", AttrType::Int),
                ("c", AttrType::Int),
            ],
        ),
        Partitioning::Hash { attr: 0, parts: 4 },
    );
    let s = b.add_relation(
        RelationSchema::new("s", vec![("a", AttrType::Int), ("d", AttrType::Int)]),
        Partitioning::Single,
    );
    for i in 0..4 {
        b.set_stats(
            PartId::new(r, i),
            PartitionStats::synthetic(10, &[10, 10, 10]),
        );
        b.place(PartId::new(r, i), NodeId(0));
    }
    b.set_stats(PartId::new(s, 0), PartitionStats::synthetic(10, &[10, 10]));
    b.place(PartId::new(s, 0), NodeId(0));
    b.build().dict
}

fn comp_op() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Ne),
        Just(CompOp::Lt),
        Just(CompOp::Le),
        Just(CompOp::Gt),
        Just(CompOp::Ge),
    ]
}

fn const_pred(attr: usize) -> impl Strategy<Value = Predicate> {
    (comp_op(), -20i64..20)
        .prop_map(move |(op, v)| Predicate::with_const(Col::new(RelId(0), attr), op, v))
}

proptest! {
    /// Soundness of `implies`: if the conjunction P implies q, every value
    /// satisfying all of P satisfies q.
    #[test]
    fn implication_is_sound(
        premises in prop::collection::vec(const_pred(0), 1..5),
        conclusion in const_pred(0),
        probe in -25i64..25,
    ) {
        if implies(&premises, &conclusion) {
            let row = [Value::Int(probe), Value::Int(0), Value::Int(0)];
            let sat = |p: &Predicate| match &p.right {
                qt_query::Operand::Const(v) => p.op.eval(&row[p.left.attr], v),
                qt_query::Operand::Col(c) => p.op.eval(&row[p.left.attr], &row[c.attr]),
            };
            if premises.iter().all(sat) {
                prop_assert!(sat(&conclusion),
                    "{premises:?} implies {conclusion:?} but probe {probe} violates it");
            }
        }
    }

    /// `simplify` preserves satisfying assignments (on single-column
    /// conjunctions it must keep exactly the same models).
    #[test]
    fn simplify_preserves_models(
        preds in prop::collection::vec(const_pred(1), 1..5),
        probe in -25i64..25,
    ) {
        let row = [Value::Int(0), Value::Int(probe), Value::Int(0)];
        let sat = |ps: &[Predicate]| ps.iter().all(|p| match &p.right {
            qt_query::Operand::Const(v) => p.op.eval(&row[p.left.attr], v),
            qt_query::Operand::Col(c) => p.op.eval(&row[p.left.attr], &row[c.attr]),
        });
        match simplify(&preds) {
            // UNSAT detection must be sound: no probe may satisfy the input.
            None => prop_assert!(
                !sat(&preds),
                "simplify said UNSAT but {probe} satisfies {preds:?}"
            ),
            Some(kept) => prop_assert_eq!(sat(&preds), sat(&kept)),
        }
    }

    /// Canonicalization is idempotent and order-insensitive.
    #[test]
    fn canonicalization_is_stable(
        mut preds in prop::collection::vec(const_pred(0), 0..6),
        swap in any::<bool>(),
    ) {
        let d = dict();
        let q1 = Query::over_full(&d, [RelId(0)])
            .with_select(vec![SelectItem::Col(Col::new(RelId(0), 2))])
            .with_predicates(preds.clone());
        if swap {
            preds.reverse();
        }
        let q2 = Query::over_full(&d, [RelId(0)])
            .with_select(vec![SelectItem::Col(Col::new(RelId(0), 2))])
            .with_predicates(preds);
        prop_assert_eq!(&q1, &q2);
        let mut q3 = q1.clone();
        q3.canonicalize();
        prop_assert_eq!(q1, q3);
    }

    /// SQL display → parse is the identity on valid queries.
    #[test]
    fn display_parse_roundtrip(
        n_preds in 0usize..3,
        cut in -10i64..10,
        use_join in any::<bool>(),
        agg in any::<bool>(),
    ) {
        let d = dict();
        let r = RelId(0);
        let s = RelId(1);
        let mut preds = vec![];
        if use_join {
            preds.push(Predicate::eq_cols(Col::new(r, 0), Col::new(s, 0)));
        }
        for i in 0..n_preds {
            preds.push(Predicate::with_const(Col::new(r, 1), CompOp::Gt, cut + i as i64));
        }
        let rels: Vec<RelId> = if use_join { vec![r, s] } else { vec![r] };
        let q = if agg {
            Query::over_full(&d, rels)
                .with_predicates(preds)
                .with_select(vec![
                    SelectItem::Col(Col::new(r, 1)),
                    SelectItem::Agg { func: qt_query::AggFunc::Sum, arg: Some(Col::new(r, 2)) },
                ])
                .with_group_by(vec![Col::new(r, 1)])
        } else {
            Query::over_full(&d, rels)
                .with_predicates(preds)
                .with_select(vec![SelectItem::Col(Col::new(r, 2))])
        };
        prop_assert!(q.validate(&d).is_ok());
        let sql = q.display_with(&d).to_string();
        let q2 = parse_query(&d, &sql).unwrap();
        prop_assert_eq!(q, q2, "{}", sql);
    }

    /// PartSet algebra laws.
    #[test]
    fn partset_algebra(
        a in prop::collection::btree_set(0u16..16, 0..10),
        b in prop::collection::btree_set(0u16..16, 0..10),
    ) {
        let pa = PartSet::from_indices(a.iter().copied());
        let pb = PartSet::from_indices(b.iter().copied());
        prop_assert_eq!(pa.union(&pb), pb.union(&pa));
        prop_assert_eq!(pa.intersect(&pb), pb.intersect(&pa));
        prop_assert_eq!(pa.minus(&pb).union(&pa.intersect(&pb)), pa);
        prop_assert_eq!(pa.is_disjoint(&pb), pa.intersect(&pb).is_empty());
        prop_assert!(pa.intersect(&pb).is_subset(&pa));
        prop_assert!(pa.is_subset(&pa.union(&pb)));
        prop_assert_eq!(pa.len() as usize, a.len());
    }

    /// `restrict_to_rels` output always validates and keeps needed columns.
    #[test]
    fn restrict_validates(keep_r in any::<bool>(), keep_s in any::<bool>()) {
        prop_assume!(keep_r || keep_s);
        let d = dict();
        let r = RelId(0);
        let s = RelId(1);
        let q = Query::over_full(&d, [r, s])
            .with_predicates(vec![
                Predicate::eq_cols(Col::new(r, 0), Col::new(s, 0)),
                Predicate::with_const(Col::new(r, 1), CompOp::Lt, 5i64),
            ])
            .with_select(vec![SelectItem::Col(Col::new(s, 1))]);
        let mut rels = std::collections::BTreeSet::new();
        if keep_r { rels.insert(r); }
        if keep_s { rels.insert(s); }
        let sub = q.restrict_to_rels(&rels);
        prop_assert!(sub.validate(&d).is_ok());
        if keep_r {
            // The join column must survive so the fragment stays joinable.
            prop_assert!(sub.select.contains(&SelectItem::Col(Col::new(r, 0))));
        }
    }
}
