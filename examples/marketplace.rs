//! Competitive marketplace: sellers charge money, mark up their asks, and
//! adapt from won/lost awards; the buyer ranks offers with a monetary
//! valuation and a Vickrey auction keeps the market honest.
//!
//! Runs the same query repeatedly and shows how adaptive markups and the
//! choice of auction shape the price the buyer pays.
//!
//! ```text
//! cargo run -p qt-bench --example marketplace
//! ```

use qt_catalog::NodeId;
use qt_core::{run_qt_direct, QtConfig, SellerEngine};
use qt_cost::Valuation;
use qt_query::parse_query;
use qt_trade::{ProtocolKind, SellerStrategy};
use qt_workload::{build_federation, FederationSpec};
use std::collections::BTreeMap;

fn main() {
    // 8 nodes, every partition replicated 3× — so every fragment has
    // competing sellers and auctions are meaningful.
    let fed = build_federation(&FederationSpec {
        nodes: 8,
        relations: 2,
        partitions_per_relation: 2,
        replication: 3,
        rows_per_partition: 50_000,
        scale: 1,
        seed: 77,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let dict = fed.catalog.dict.clone();
    let query = parse_query(
        &dict,
        "SELECT r0.b, r1.c FROM r0, r1 WHERE r0.a = r1.a AND r0.b < 40",
    )
    .expect("valid SQL");

    for protocol in [ProtocolKind::SealedBid, ProtocolKind::Vickrey] {
        println!("=== protocol: {} ===", protocol.label());
        let cfg = QtConfig {
            protocol,
            valuation: Valuation::response_time(),
            seller_strategy: SellerStrategy::adaptive_markup(1.4),
            ..QtConfig::default()
        };
        // Persistent sellers across repeated queries: they learn from awards.
        let mut sellers: BTreeMap<NodeId, SellerEngine> = fed
            .catalog
            .nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone()),
                )
            })
            .collect();

        for round in 0..5 {
            let out = run_qt_direct(NodeId(0), dict.clone(), &query, &mut sellers, &cfg);
            let plan = out.plan.expect("plan");
            let paid: f64 = plan.purchases.iter().map(|p| p.agreed_value).sum();
            let true_cost: f64 = plan.purchases.iter().map(|p| p.offer.true_cost).sum();
            let avg_markup: f64 = sellers
                .values()
                .map(|s| s.strategy.current_markup())
                .sum::<f64>()
                / sellers.len() as f64;
            println!(
                "  query #{round}: buyer pays {paid:.3}, sellers' true cost {true_cost:.3}, \
                 surplus {:.3}, avg market markup {avg_markup:.3}",
                paid - true_cost
            );
        }
        println!();
    }
    println!(
        "Under Vickrey the winner is paid the second-lowest ask, so inflated asks\n\
         lose deals and the adaptive markups get competed back toward 1.0."
    );
}
