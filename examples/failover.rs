//! Autonomy in action: sellers that ignore RFBs, buyer timeouts, and
//! adaptive re-planning from the accumulated offer pool when a seller dies
//! after trading — no second trading round needed.
//!
//! ```text
//! cargo run -p qt-bench --example failover
//! ```

use qt_catalog::{NodeId, RelId};
use qt_core::buyer::RoundOutcome;
use qt_core::{run_qt_sim, BuyerEngine, QtConfig, SellerEngine};
use qt_exec::evaluate_query;
use qt_exec::reference::approx_same_rows;
use qt_query::{parse_query, PartSet};
use qt_workload::{telecom_federation, TelecomSpec};
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    // Every office keeps an invoiceline replica; customers are per-office.
    let (catalog, stores) = telecom_federation(&TelecomSpec {
        offices: 3,
        customers_per_office: 40,
        lines_per_customer: 5,
        invoice_replicas: 2, // invoiceline lives on Athens and Corfu
        seed: 15,
    });
    let dict = catalog.dict.clone();
    let query = parse_query(
        &dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .unwrap()
    // Myconos customers: their partition lives only on node 2, while the
    // invoiceline side of the join has two replicas to fail over between.
    .with_partset(RelId(0), PartSet::single(2));

    // --- Act 1: a seller sleeps through the RFB -------------------------
    println!("act 1: Corfu ignores the RFB; the buyer's timeout closes the round\n");
    let cfg = QtConfig {
        seller_timeout: 1.5,
        ..QtConfig::default()
    };
    let mut sellers: BTreeMap<NodeId, SellerEngine> = catalog
        .nodes
        .iter()
        .map(|&n| (n, SellerEngine::new(catalog.holdings_of(n), cfg.clone())))
        .collect();
    sellers.get_mut(&NodeId(1)).unwrap().offline_rounds = (0..8).collect();
    let (out, metrics) = run_qt_sim(NodeId(7), dict.clone(), &query, sellers, &cfg);
    let plan = out
        .plan
        .expect("Athens' invoiceline replica covers for Corfu");
    println!(
        "  plan found anyway: {} purchases, {:.2}s trading time ({} timeout timer(s) fired)\n",
        plan.purchases.len(),
        out.optimization_time,
        metrics.kind_count("timeout"),
    );

    // --- Act 2: a winning seller dies after trading ----------------------
    println!("act 2: re-plan from the offer pool after a winner dies\n");
    // A data-less coordinator (node 7) buys, so every purchase is remote.
    let cfg = QtConfig::default();
    let mut buyer = BuyerEngine::new(NodeId(7), dict.clone(), query.clone(), cfg.clone());
    let mut sellers: BTreeMap<NodeId, SellerEngine> = catalog
        .nodes
        .iter()
        .map(|&n| (n, SellerEngine::new(catalog.holdings_of(n), cfg.clone())))
        .collect();
    let mut items = buyer.start();
    loop {
        for engine in sellers.values_mut() {
            buyer.receive_offers(engine.respond(buyer.round, &items).offers);
        }
        match buyer.close_round() {
            RoundOutcome::Continue(next) => items = next,
            RoundOutcome::Done => break,
        }
    }
    let original = buyer.best.clone().expect("plan");
    // Kill the provider of the replicated invoiceline fragment — the
    // customer partition's sole holder must survive for recovery to exist.
    let victim = original
        .purchases
        .iter()
        .find(|p| {
            p.offer.query.relations.contains_key(&RelId(1))
                && !p.offer.query.relations.contains_key(&RelId(0))
        })
        .map(|p| p.offer.seller)
        .expect("an invoiceline-only purchase exists");
    println!(
        "  original plan buys from {:?}",
        original
            .purchases
            .iter()
            .map(|p| p.offer.seller.to_string())
            .collect::<Vec<_>>()
    );
    println!("  {victim} dies before execution...");

    let failed: BTreeSet<NodeId> = [victim].into_iter().collect();
    let recovered = buyer
        .replan_excluding(&failed)
        .expect("replicas cover the failure");
    println!(
        "  recovered plan buys from {:?} (no new trading round)",
        recovered
            .purchases
            .iter()
            .map(|p| p.offer.seller.to_string())
            .collect::<Vec<_>>()
    );

    // Execute the recovered plan on the surviving stores and verify.
    let mut surviving = stores.clone();
    surviving.remove(&victim);
    let got = recovered.execute_on(&dict, &surviving).expect("executes");
    let mut all = qt_exec::DataStore::new();
    for s in stores.values() {
        all.merge_from(s);
    }
    let want = evaluate_query(&query, &all).expect("reference");
    assert!(approx_same_rows(&got, &want, 1e-9));
    println!("\n  recovered answer verified: {} row(s)", got.len());
}
