//! Federated analytics over a TPC-H-like star schema: the internet
//! data-products scenario the paper's introduction motivates. Dimension
//! tables are replicated, fact tables are hash-partitioned and scattered;
//! three analytical queries are optimized by trading and executed.
//!
//! ```text
//! cargo run -p qt-bench --example analytics
//! ```

use qt_catalog::NodeId;
use qt_core::{run_qt_direct, QtConfig, SellerEngine};
use qt_exec::evaluate_query;
use qt_exec::reference::approx_same_rows;
use qt_query::parse_query;
use qt_workload::tpch::{queries, tpch_federation, TpchSpec};
use std::collections::BTreeMap;

fn main() {
    let (catalog, stores, _rels) = tpch_federation(&TpchSpec {
        nodes: 8,
        orders: 400,
        fact_partitions: 4,
        dim_replicas: 3,
        seed: 7,
    });
    let dict = catalog.dict.clone();
    let mut all = qt_exec::DataStore::new();
    for s in stores.values() {
        all.merge_from(s);
    }

    println!(
        "federation: {} nodes; lineitem has {} rows over {} partitions\n",
        catalog.nodes.len(),
        catalog.relation_stats(qt_catalog::RelId(5)).rows,
        dict.rel(qt_catalog::RelId(5)).partitioning.num_partitions(),
    );

    for (name, sql) in [
        ("revenue per nation", queries::REVENUE_PER_NATION),
        ("big order lines", queries::BIG_ORDER_LINES),
        (
            "lines per supplier nation",
            queries::LINES_PER_SUPPLIER_NATION,
        ),
    ] {
        let query = parse_query(&dict, sql).expect("valid SQL");
        let cfg = QtConfig::default();
        let mut sellers: BTreeMap<NodeId, SellerEngine> = catalog
            .nodes
            .iter()
            .map(|&n| (n, SellerEngine::new(catalog.holdings_of(n), cfg.clone())))
            .collect();
        let out = run_qt_direct(NodeId(0), dict.clone(), &query, &mut sellers, &cfg);
        let plan = out.plan.expect("plan found");
        let answer = plan.execute_on(&dict, &stores).expect("plan executes");
        let expected = evaluate_query(&query, &all).expect("reference evaluates");
        assert!(
            approx_same_rows(&answer, &expected, 1e-9),
            "{name}: wrong answer"
        );

        println!("== {name} ==");
        println!(
            "  {} purchases from {} sellers, {} trading messages, est. response {:.3}s",
            plan.purchases.len(),
            plan.seller_count(),
            out.messages,
            plan.est.response_time,
        );
        let mut rows = answer.clone();
        rows.sort();
        for row in rows.iter().take(4) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("    {}", cells.join(" | "));
        }
        if rows.len() > 4 {
            println!("    ... {} more rows", rows.len() - 4);
        }
        println!();
    }
    println!("all three answers verified against the reference evaluator");
}
