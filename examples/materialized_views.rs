//! Materialized views in the market (§3.5): a node that keeps a finer-grained
//! aggregate materialized can answer a coarser aggregate query wholesale —
//! the seller predicates analyser spots the match and offers the view's
//! contents "in small value".
//!
//! ```text
//! cargo run -p qt-bench --example materialized_views
//! ```

use qt_catalog::NodeId;
use qt_core::{run_qt_direct, OfferKind, QtConfig, SellerEngine};
use qt_query::{parse_query, MaterializedView};
use qt_workload::{telecom_federation, TelecomSpec};
use std::collections::BTreeMap;

fn main() {
    let (catalog, _stores) = telecom_federation(&TelecomSpec {
        offices: 3,
        customers_per_office: 200,
        lines_per_customer: 10,
        invoice_replicas: 1,
        seed: 5,
    });
    let dict = catalog.dict.clone();

    let query = parse_query(
        &dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .expect("valid SQL");

    // Myconos (node 2) materializes the finer aggregate grouped by
    // (office, custname) — the paper's §3.5 example.
    let finer = parse_query(
        &dict,
        "SELECT office, custname, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office, custname",
    )
    .expect("valid SQL");

    for with_view in [false, true] {
        let cfg = QtConfig::default();
        let mut sellers: BTreeMap<NodeId, SellerEngine> = catalog
            .nodes
            .iter()
            .map(|&n| (n, SellerEngine::new(catalog.holdings_of(n), cfg.clone())))
            .collect();
        if with_view {
            sellers.get_mut(&NodeId(0)).expect("athens").views = vec![MaterializedView::new(
                "charges_by_office_and_customer",
                finer.clone(),
            )];
        }
        let out = run_qt_direct(NodeId(1), dict.clone(), &query, &mut sellers, &cfg);
        let plan = out.plan.expect("plan");
        let from_view = plan
            .purchases
            .iter()
            .filter(|p| p.offer.kind == OfferKind::FromView)
            .count();
        println!(
            "view {}: plan cost {:.3}s, {} purchases ({} served from a materialized view)",
            if with_view { "present" } else { "absent " },
            plan.est.additive_cost,
            plan.purchases.len(),
            from_view,
        );
        if with_view {
            for p in &plan.purchases {
                if p.offer.kind == OfferKind::FromView {
                    println!(
                        "  the view answers the whole query with freshness {:.2}: {}",
                        p.offer.props.freshness,
                        p.offer.query.display_with(&dict)
                    );
                }
            }
        }
    }
    println!(
        "\nThe finer-grained (office, custname) view subsumes the coarser GROUP BY\n\
         office: the holder re-aggregates its materialized rows instead of\n\
         recomputing the join."
    );
}
