//! The paper's motivating example (§1), end to end.
//!
//! A telecom's regional offices each run an autonomous DBMS. `customer` is
//! list-partitioned by office; `invoiceline` is replicated at some offices.
//! A manager at Athens asks for the total issued bills of the Corfu and
//! Myconos offices; Athens trades the query on the federation market and
//! effectively purchases the two partial sums.
//!
//! ```text
//! cargo run -p qt-bench --example telecom
//! ```

use qt_catalog::{NodeId, RelId};
use qt_core::{run_qt_direct, OfferKind, QtConfig, SellerEngine};
use qt_exec::evaluate_query;
use qt_exec::reference::same_rows;
use qt_query::{parse_query, PartSet};
use qt_workload::{telecom_federation, TelecomSpec};
use std::collections::BTreeMap;

fn main() {
    let spec = TelecomSpec {
        offices: 3,
        customers_per_office: 50,
        lines_per_customer: 6,
        invoice_replicas: 3, // every office keeps an invoiceline replica
        seed: 2004,
    };
    let (catalog, stores) = telecom_federation(&spec);
    let dict = catalog.dict.clone();

    // The manager's query, restricted to the Corfu and Myconos partitions
    // (exactly the paper's WHERE office IN ('Corfu','Myconos')).
    let query = parse_query(
        &dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .expect("valid SQL")
    .with_partset(RelId(0), PartSet::from_indices([1, 2]));

    println!("Athens optimizes: {}\n", query.display_with(&dict));

    let cfg = QtConfig::default();
    let mut sellers: BTreeMap<NodeId, SellerEngine> = catalog
        .nodes
        .iter()
        .map(|&n| (n, SellerEngine::new(catalog.holdings_of(n), cfg.clone())))
        .collect();

    let outcome = run_qt_direct(NodeId(0), dict.clone(), &query, &mut sellers, &cfg);
    let plan = outcome.plan.expect("plan found");

    println!("{}", plan.describe(&dict));

    // The paper's punchline: Athens buys pre-aggregated partial sums from
    // the offices that own the data, instead of shipping raw rows.
    let offices = ["Athens", "Corfu", "Myconos"];
    for p in &plan.purchases {
        let from = offices.get(p.offer.seller.0 as usize).unwrap_or(&"?");
        println!(
            "Athens buys from {from}: {:?} at {:.3}s",
            p.offer.kind, p.offer.props.total_time
        );
    }
    let partial_sums = plan
        .purchases
        .iter()
        .filter(|p| p.offer.kind == OfferKind::PartialAggregate)
        .count();
    println!("\n{partial_sums} of the purchases are pre-aggregated partial SUMs");

    // Execute and verify.
    let answer = plan.execute_on(&dict, &stores).expect("plan executes");
    let mut all = qt_exec::DataStore::new();
    for s in stores.values() {
        all.merge_from(s);
    }
    let expected = evaluate_query(&query, &all).expect("reference evaluates");
    assert!(same_rows(&answer, &expected));

    println!("\ntotal bills per island office (verified):");
    let mut sorted = answer;
    sorted.sort();
    for row in &sorted {
        println!("  {:10} {}", row[0].to_string(), row[1]);
    }
}
