//! Quickstart: optimize one SQL query by query trading on a small synthetic
//! federation, then execute the resulting distributed plan and print the
//! answer.
//!
//! ```text
//! cargo run -p qt-bench --example quickstart
//! ```

use qt_catalog::NodeId;
use qt_core::{run_qt_direct, QtConfig, SellerEngine};
use qt_exec::evaluate_query;
use qt_exec::reference::same_rows;
use qt_query::parse_query;
use qt_workload::{build_federation, FederationSpec};
use std::collections::BTreeMap;

fn main() {
    // A federation of 6 autonomous nodes holding 3 relations (r0, r1, r2),
    // each hash-partitioned in two, with real materialized rows.
    let fed = build_federation(&FederationSpec {
        nodes: 6,
        relations: 3,
        partitions_per_relation: 2,
        replication: 1,
        rows_per_partition: 200,
        scale: 1,
        seed: 42,
        with_data: true,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let dict = fed.catalog.dict.clone();

    // The user's SQL arrives at node 0 — the buyer.
    let sql = "SELECT r0.b, SUM(r2.c) FROM r0, r1, r2 \
               WHERE r0.a = r1.a AND r1.a = r2.a AND r0.b < 50 GROUP BY r0.b";
    let query = parse_query(&dict, sql).expect("valid SQL");
    println!("optimizing: {sql}\n");

    // Every node is an autonomous seller; none of them (nor the buyer) ever
    // sees the global catalog.
    let cfg = QtConfig::default();
    let mut sellers: BTreeMap<NodeId, SellerEngine> = fed
        .catalog
        .nodes
        .iter()
        .map(|&n| {
            (
                n,
                SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone()),
            )
        })
        .collect();

    let outcome = run_qt_direct(NodeId(0), dict.clone(), &query, &mut sellers, &cfg);
    let plan = outcome.plan.expect("the federation covers the query");

    println!(
        "trading finished in {} iteration(s), {} messages, {:.3}s simulated optimization time\n",
        outcome.iterations, outcome.messages, outcome.optimization_time
    );
    println!("{}", plan.describe(&dict));

    // Execute the plan against the per-node stores and cross-check against
    // a brute-force evaluation over all the data.
    let answer = plan.execute_on(&dict, &fed.stores).expect("plan executes");
    let expected = evaluate_query(&query, &fed.union_store()).expect("reference evaluates");
    assert!(
        same_rows(&answer, &expected),
        "plan must compute the true answer"
    );

    println!(
        "answer ({} rows, verified against reference):",
        answer.len()
    );
    let mut sorted = answer.clone();
    sorted.sort();
    for row in sorted.iter().take(10) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
    if sorted.len() > 10 {
        println!("  ... and {} more", sorted.len() - 10);
    }
}
